#include "extractor.hpp"

#include "sim/logging.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace quest::qecc {

using isa::PhysOpcode;
using quantum::BatchErrorChannel;
using quantum::BatchPauliFrame;
using quantum::ErrorChannel;
using quantum::PauliFrame;
using quantum::Tableau;

bool
SyndromeRound::any() const
{
    return weight() != 0;
}

std::size_t
SyndromeRound::weight() const
{
    std::size_t w = 0;
    for (auto f : xFlips)
        w += f;
    for (auto f : zFlips)
        w += f;
    return w;
}

SyndromeRound
BatchSyndromeRound::lane(std::size_t lane) const
{
    QUEST_ASSERT(lane < BatchPauliFrame::lanes, "lane %zu out of range",
                 lane);
    SyndromeRound out;
    out.xFlips.reserve(xFlips.size());
    out.zFlips.reserve(zFlips.size());
    for (const std::uint64_t w : xFlips)
        out.xFlips.push_back((w >> lane) & 1u);
    for (const std::uint64_t w : zFlips)
        out.zFlips.push_back((w >> lane) & 1u);
    return out;
}

SyndromeExtractor::SyndromeExtractor(const RoundSchedule &schedule)
    : _schedule(&schedule),
      _mBatchRounds(sim::metrics::Registry::global().counter(
          "qecc.batch.rounds", "batched syndrome extraction rounds")),
      _mBatchLaneRounds(sim::metrics::Registry::global().counter(
          "qecc.batch.lane_rounds",
          "per-trial rounds covered by batched execution "
          "(rounds x 64)")),
      _mBatchWordUops(sim::metrics::Registry::global().counter(
          "qecc.batch.word_uops",
          "word-wide frame micro-ops retired by batched rounds")),
      _mBatchFillBits(sim::metrics::Registry::global().counter(
          "qecc.batch.fill_bits",
          "set error-plane bits observed at batched round boundaries"))
{
    const Lattice &lat = schedule.lattice();
    _xAncillas = lat.sites(SiteType::XAncilla);
    _zAncillas = lat.sites(SiteType::ZAncilla);
    for (const Coord c : lat.sites(SiteType::Data))
        _dataIndices.push_back(lat.index(c));
    _syndromeSlot.assign(lat.numQubits(), -1);
    for (std::size_t i = 0; i < _xAncillas.size(); ++i)
        _syndromeSlot[lat.index(_xAncillas[i])] = int(i);
    for (std::size_t i = 0; i < _zAncillas.size(); ++i)
        _syndromeSlot[lat.index(_zAncillas[i])] = int(i);
    QUEST_ASSERT(validateSchedule(schedule), "malformed round schedule");

    // Precompile the schedule into a flat program: the sub-cycle
    // walk, neighbour resolution and slot lookups happen once here
    // instead of every round. Op order is exactly the schedule's
    // (sub-cycle major, qubit minor), so noise draw order — and
    // therefore every random stream — is unchanged.
    for (std::size_t s = 0; s < schedule.depth(); ++s) {
        const SubCycle &sc = schedule.subCycle(s);
        for (std::size_t q = 0; q < sc.uops.size(); ++q) {
            const PhysOpcode op = sc.uops[q];
            RoundOp ro{};
            ro.a = std::uint32_t(q);
            switch (op) {
              case PhysOpcode::Nop:
              case PhysOpcode::Hadamard: // timing-only dressing slot
              case PhysOpcode::Phase:
              case PhysOpcode::Verify:   // classical cat-state check
                continue;

              case PhysOpcode::PrepZ:
                ro.kind = RoundOp::Kind::PrepZ;
                break;

              case PhysOpcode::PrepX:
                ro.kind = RoundOp::Kind::PrepX;
                break;

              case PhysOpcode::CnotN:
              case PhysOpcode::CnotE:
              case PhysOpcode::CnotS:
              case PhysOpcode::CnotW: {
                const auto n = lat.neighbour(lat.coord(q),
                                             cnotDirection(op));
                ro.kind = RoundOp::Kind::Cnot;
                ro.b = std::uint32_t(lat.index(*n));
                break;
              }

              case PhysOpcode::CnotTargetN:
              case PhysOpcode::CnotTargetE:
              case PhysOpcode::CnotTargetS:
              case PhysOpcode::CnotTargetW: {
                const auto n = lat.neighbour(lat.coord(q),
                                             cnotDirection(op));
                ro.kind = RoundOp::Kind::Cnot;
                ro.a = std::uint32_t(lat.index(*n));
                ro.b = std::uint32_t(q);
                break;
              }

              case PhysOpcode::MeasX:
              case PhysOpcode::MeasZ: {
                ro.kind = op == PhysOpcode::MeasX
                              ? RoundOp::Kind::MeasX
                              : RoundOp::Kind::MeasZ;
                const int slot = _syndromeSlot[q];
                QUEST_ASSERT(slot >= 0,
                             "measurement on non-ancilla %zu", q);
                ro.slot = std::uint16_t(slot);
                ro.xAncilla = lat.siteType(lat.coord(q))
                                      == SiteType::XAncilla
                                  ? 1
                                  : 0;
                break;
              }

              case PhysOpcode::NumOpcodes:
                sim::panic("invalid opcode in schedule");
            }
            _program.push_back(ro);
        }
    }
}

SyndromeRound
SyndromeExtractor::runRound(PauliFrame &frame, ErrorChannel *channel) const
{
    SyndromeRound out;
    out.xFlips.assign(_xAncillas.size(), 0);
    out.zFlips.assign(_zAncillas.size(), 0);

    // Idle decoherence: one per-data-qubit channel per round.
    if (channel) {
        for (std::size_t q : _dataIndices)
            channel->idle(frame, q);
    }

    for (const RoundOp &op : _program) {
        switch (op.kind) {
          case RoundOp::Kind::PrepZ:
            frame.reset(op.a);
            if (channel)
                channel->afterPrep(frame, op.a);
            break;

          case RoundOp::Kind::PrepX:
            frame.reset(op.a);
            frame.h(op.a);
            if (channel)
                channel->afterPrep(frame, op.a);
            break;

          case RoundOp::Kind::Cnot:
            frame.cnot(op.a, op.b);
            if (channel)
                channel->afterGate2(frame, op.a, op.b);
            break;

          case RoundOp::Kind::MeasX:
            frame.h(op.a);
            [[fallthrough]];
          case RoundOp::Kind::MeasZ: {
            bool flip = frame.measureZFlip(op.a);
            if (channel && channel->measurementFlip())
                flip = !flip;
            if (op.xAncilla)
                out.xFlips[op.slot] = flip ? 1 : 0;
            else
                out.zFlips[op.slot] = flip ? 1 : 0;
            break;
          }
        }
    }
    return out;
}

BatchSyndromeRound
SyndromeExtractor::runRoundBatch(BatchPauliFrame &frame,
                                 BatchErrorChannel *channel) const
{
    QUEST_TRACE_SCOPE("qecc", "batch_round");
    BatchSyndromeRound out;
    out.xFlips.assign(_xAncillas.size(), 0);
    out.zFlips.assign(_zAncillas.size(), 0);

    if (channel) {
        for (std::size_t q : _dataIndices)
            channel->idle(frame, q);
    }

    for (const RoundOp &op : _program) {
        switch (op.kind) {
          case RoundOp::Kind::PrepZ:
            frame.reset(op.a);
            if (channel)
                channel->afterPrep(frame, op.a);
            break;

          case RoundOp::Kind::PrepX:
            frame.reset(op.a);
            frame.h(op.a);
            if (channel)
                channel->afterPrep(frame, op.a);
            break;

          case RoundOp::Kind::Cnot:
            frame.cnot(op.a, op.b);
            if (channel)
                channel->afterGate2(frame, op.a, op.b);
            break;

          case RoundOp::Kind::MeasX:
            frame.h(op.a);
            [[fallthrough]];
          case RoundOp::Kind::MeasZ: {
            std::uint64_t flips = frame.measureZFlipMask(op.a);
            if (channel)
                flips ^= channel->measurementFlipMask();
            if (op.xAncilla)
                out.xFlips[op.slot] = flips;
            else
                out.zFlips[op.slot] = flips;
            break;
          }
        }
    }

    // Cycle accounting for the bit-parallel engine: how many rounds
    // ran, how many lane-trials they covered, how many word-wide
    // micro-ops were retired and how full the error planes are
    // (integer counters only — deterministic across thread counts).
    // Counters are constructor-bound members, not function-local
    // statics, so registry resets cannot strand them.
    ++_mBatchRounds;
    _mBatchLaneRounds += BatchPauliFrame::lanes;
    _mBatchWordUops += _program.size() + _dataIndices.size();
    _mBatchFillBits += frame.totalErrorBits();

    return out;
}

std::vector<BatchSyndromeRound>
SyndromeExtractor::runRoundsBatch(BatchPauliFrame &frame,
                                  BatchErrorChannel *channel,
                                  std::size_t rounds) const
{
    std::vector<BatchSyndromeRound> history;
    history.reserve(rounds);
    for (std::size_t r = 0; r < rounds; ++r)
        history.push_back(runRoundBatch(frame, channel));
    return history;
}

std::vector<SyndromeRound>
SyndromeExtractor::runRounds(PauliFrame &frame, ErrorChannel *channel,
                             std::size_t rounds) const
{
    std::vector<SyndromeRound> history;
    history.reserve(rounds);
    for (std::size_t r = 0; r < rounds; ++r)
        history.push_back(runRound(frame, channel));
    return history;
}

void
SyndromeExtractor::runRoundsStreaming(
    PauliFrame &frame, ErrorChannel *channel, std::size_t rounds,
    const std::function<void(const SyndromeRound &)> &sink) const
{
    SyndromeRound scratch;
    for (std::size_t r = 0; r < rounds; ++r) {
        scratch = runRound(frame, channel);
        sink(scratch);
    }
}

SyndromeRound
runRoundOnTableau(const RoundSchedule &schedule, Tableau &tableau,
                  sim::Rng &rng)
{
    const Lattice &lat = schedule.lattice();
    QUEST_ASSERT(tableau.numQubits() == lat.numQubits(),
                 "tableau size %zu does not match lattice size %zu",
                 tableau.numQubits(), lat.numQubits());

    const auto x_anc = lat.sites(SiteType::XAncilla);
    const auto z_anc = lat.sites(SiteType::ZAncilla);
    SyndromeRound out;
    out.xFlips.assign(x_anc.size(), 0);
    out.zFlips.assign(z_anc.size(), 0);

    for (std::size_t s = 0; s < schedule.depth(); ++s) {
        const SubCycle &sc = schedule.subCycle(s);
        for (std::size_t q = 0; q < sc.uops.size(); ++q) {
            const PhysOpcode op = sc.uops[q];
            switch (op) {
              case PhysOpcode::Nop:
              case PhysOpcode::Hadamard:
              case PhysOpcode::Phase:
              case PhysOpcode::Verify:
                break;
              case PhysOpcode::PrepZ:
                tableau.reset(q, rng);
                break;
              case PhysOpcode::PrepX:
                tableau.reset(q, rng);
                tableau.h(q);
                break;
              case PhysOpcode::CnotN:
              case PhysOpcode::CnotE:
              case PhysOpcode::CnotS:
              case PhysOpcode::CnotW: {
                const auto n = lat.neighbour(lat.coord(q),
                                             cnotDirection(op));
                tableau.cnot(q, lat.index(*n));
                break;
              }
              case PhysOpcode::CnotTargetN:
              case PhysOpcode::CnotTargetE:
              case PhysOpcode::CnotTargetS:
              case PhysOpcode::CnotTargetW: {
                const auto n = lat.neighbour(lat.coord(q),
                                             cnotDirection(op));
                tableau.cnot(lat.index(*n), q);
                break;
              }
              case PhysOpcode::MeasX:
                tableau.h(q);
                [[fallthrough]];
              case PhysOpcode::MeasZ: {
                const bool outcome = tableau.measureZ(q, rng);
                const Coord c = lat.coord(q);
                if (lat.siteType(c) == SiteType::XAncilla) {
                    for (std::size_t i = 0; i < x_anc.size(); ++i)
                        if (x_anc[i] == c)
                            out.xFlips[i] = outcome ? 1 : 0;
                } else {
                    for (std::size_t i = 0; i < z_anc.size(); ++i)
                        if (z_anc[i] == c)
                            out.zFlips[i] = outcome ? 1 : 0;
                }
                break;
              }
              case PhysOpcode::NumOpcodes:
                sim::panic("invalid opcode in schedule");
            }
        }
    }
    return out;
}

} // namespace quest::qecc
