#include "extractor.hpp"

#include "sim/logging.hpp"

namespace quest::qecc {

using isa::PhysOpcode;
using quantum::ErrorChannel;
using quantum::PauliFrame;
using quantum::Tableau;

bool
SyndromeRound::any() const
{
    return weight() != 0;
}

std::size_t
SyndromeRound::weight() const
{
    std::size_t w = 0;
    for (auto f : xFlips)
        w += f;
    for (auto f : zFlips)
        w += f;
    return w;
}

SyndromeExtractor::SyndromeExtractor(const RoundSchedule &schedule)
    : _schedule(&schedule)
{
    const Lattice &lat = schedule.lattice();
    _xAncillas = lat.sites(SiteType::XAncilla);
    _zAncillas = lat.sites(SiteType::ZAncilla);
    for (const Coord c : lat.sites(SiteType::Data))
        _dataIndices.push_back(lat.index(c));
    _syndromeSlot.assign(lat.numQubits(), -1);
    for (std::size_t i = 0; i < _xAncillas.size(); ++i)
        _syndromeSlot[lat.index(_xAncillas[i])] = int(i);
    for (std::size_t i = 0; i < _zAncillas.size(); ++i)
        _syndromeSlot[lat.index(_zAncillas[i])] = int(i);
    QUEST_ASSERT(validateSchedule(schedule), "malformed round schedule");
}

SyndromeRound
SyndromeExtractor::runRound(PauliFrame &frame, ErrorChannel *channel) const
{
    const Lattice &lat = _schedule->lattice();
    SyndromeRound out;
    out.xFlips.assign(_xAncillas.size(), 0);
    out.zFlips.assign(_zAncillas.size(), 0);

    // Idle decoherence: one per-data-qubit channel per round.
    if (channel) {
        for (std::size_t q : _dataIndices)
            channel->idle(frame, q);
    }

    for (std::size_t s = 0; s < _schedule->depth(); ++s) {
        const SubCycle &sc = _schedule->subCycle(s);
        for (std::size_t q = 0; q < sc.uops.size(); ++q) {
            const PhysOpcode op = sc.uops[q];
            switch (op) {
              case PhysOpcode::Nop:
              case PhysOpcode::Hadamard: // timing-only dressing slot
              case PhysOpcode::Phase:
              case PhysOpcode::Verify:   // classical cat-state check
                break;

              case PhysOpcode::PrepZ:
                frame.reset(q);
                if (channel)
                    channel->afterPrep(frame, q);
                break;

              case PhysOpcode::PrepX:
                frame.reset(q);
                frame.h(q);
                if (channel)
                    channel->afterPrep(frame, q);
                break;

              case PhysOpcode::CnotN:
              case PhysOpcode::CnotE:
              case PhysOpcode::CnotS:
              case PhysOpcode::CnotW: {
                const auto n = lat.neighbour(lat.coord(q),
                                             cnotDirection(op));
                const std::size_t partner = lat.index(*n);
                frame.cnot(q, partner);
                if (channel)
                    channel->afterGate2(frame, q, partner);
                break;
              }

              case PhysOpcode::CnotTargetN:
              case PhysOpcode::CnotTargetE:
              case PhysOpcode::CnotTargetS:
              case PhysOpcode::CnotTargetW: {
                const auto n = lat.neighbour(lat.coord(q),
                                             cnotDirection(op));
                const std::size_t partner = lat.index(*n);
                frame.cnot(partner, q);
                if (channel)
                    channel->afterGate2(frame, partner, q);
                break;
              }

              case PhysOpcode::MeasX:
                frame.h(q);
                [[fallthrough]];
              case PhysOpcode::MeasZ: {
                bool flip = frame.measureZFlip(q);
                if (channel && channel->measurementFlip())
                    flip = !flip;
                const int slot = _syndromeSlot[q];
                QUEST_ASSERT(slot >= 0, "measurement on non-ancilla %zu",
                             q);
                if (lat.siteType(lat.coord(q)) == SiteType::XAncilla)
                    out.xFlips[std::size_t(slot)] = flip ? 1 : 0;
                else
                    out.zFlips[std::size_t(slot)] = flip ? 1 : 0;
                break;
              }

              case PhysOpcode::NumOpcodes:
                sim::panic("invalid opcode in schedule");
            }
        }
    }
    return out;
}

std::vector<SyndromeRound>
SyndromeExtractor::runRounds(PauliFrame &frame, ErrorChannel *channel,
                             std::size_t rounds) const
{
    std::vector<SyndromeRound> history;
    history.reserve(rounds);
    for (std::size_t r = 0; r < rounds; ++r)
        history.push_back(runRound(frame, channel));
    return history;
}

SyndromeRound
runRoundOnTableau(const RoundSchedule &schedule, Tableau &tableau,
                  sim::Rng &rng)
{
    const Lattice &lat = schedule.lattice();
    QUEST_ASSERT(tableau.numQubits() == lat.numQubits(),
                 "tableau size %zu does not match lattice size %zu",
                 tableau.numQubits(), lat.numQubits());

    const auto x_anc = lat.sites(SiteType::XAncilla);
    const auto z_anc = lat.sites(SiteType::ZAncilla);
    SyndromeRound out;
    out.xFlips.assign(x_anc.size(), 0);
    out.zFlips.assign(z_anc.size(), 0);

    for (std::size_t s = 0; s < schedule.depth(); ++s) {
        const SubCycle &sc = schedule.subCycle(s);
        for (std::size_t q = 0; q < sc.uops.size(); ++q) {
            const PhysOpcode op = sc.uops[q];
            switch (op) {
              case PhysOpcode::Nop:
              case PhysOpcode::Hadamard:
              case PhysOpcode::Phase:
              case PhysOpcode::Verify:
                break;
              case PhysOpcode::PrepZ:
                tableau.reset(q, rng);
                break;
              case PhysOpcode::PrepX:
                tableau.reset(q, rng);
                tableau.h(q);
                break;
              case PhysOpcode::CnotN:
              case PhysOpcode::CnotE:
              case PhysOpcode::CnotS:
              case PhysOpcode::CnotW: {
                const auto n = lat.neighbour(lat.coord(q),
                                             cnotDirection(op));
                tableau.cnot(q, lat.index(*n));
                break;
              }
              case PhysOpcode::CnotTargetN:
              case PhysOpcode::CnotTargetE:
              case PhysOpcode::CnotTargetS:
              case PhysOpcode::CnotTargetW: {
                const auto n = lat.neighbour(lat.coord(q),
                                             cnotDirection(op));
                tableau.cnot(lat.index(*n), q);
                break;
              }
              case PhysOpcode::MeasX:
                tableau.h(q);
                [[fallthrough]];
              case PhysOpcode::MeasZ: {
                const bool outcome = tableau.measureZ(q, rng);
                const Coord c = lat.coord(q);
                if (lat.siteType(c) == SiteType::XAncilla) {
                    for (std::size_t i = 0; i < x_anc.size(); ++i)
                        if (x_anc[i] == c)
                            out.xFlips[i] = outcome ? 1 : 0;
                } else {
                    for (std::size_t i = 0; i < z_anc.size(); ++i)
                        if (z_anc[i] == c)
                            out.zFlips[i] = outcome ? 1 : 0;
                }
                break;
              }
              case PhysOpcode::NumOpcodes:
                sim::panic("invalid opcode in schedule");
            }
        }
    }
    return out;
}

} // namespace quest::qecc
