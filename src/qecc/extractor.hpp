/**
 * @file
 * Syndrome extraction execution (paper Figure 5 / Appendix A).
 *
 * The SyndromeExtractor runs a RoundSchedule against a PauliFrame,
 * injecting noise through an ErrorChannel, and returns the ancilla
 * measurement flips of each round. Repeated rounds build the
 * space-time syndrome history that the decoders consume.
 *
 * For validation, runRoundOnTableau() executes the same schedule on
 * the full stabilizer tableau; unit tests cross-check that both
 * models report identical syndromes for identical injected errors.
 *
 * Modelling notes:
 *  - Verify slots (Shor cat-state checks) and Hadamard dressing
 *    slots (SC-13) contribute to depth, timing and micro-op counts
 *    but are functionally transparent: the canonical prepare/
 *    interact/measure semantics carry the syndrome. This mirrors
 *    the paper's use of a "simulacrum" of the published circuits
 *    (Section 4.4).
 *  - Idle (decoherence) noise is applied to data qubits once per
 *    round, matching the paper's "error rate per QECC cycle" model.
 */

#ifndef QUEST_QECC_EXTRACTOR_HPP
#define QUEST_QECC_EXTRACTOR_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "quantum/error_model.hpp"
#include "quantum/pauli_frame.hpp"
#include "quantum/tableau.hpp"
#include "schedule.hpp"
#include "sim/metrics.hpp"

namespace quest::qecc {

/** Measurement flips of one round, indexed by ancilla list order. */
struct SyndromeRound
{
    /** X-stabilizer flips (detect Z errors), in sites() order. */
    std::vector<std::uint8_t> xFlips;
    /** Z-stabilizer flips (detect X errors), in sites() order. */
    std::vector<std::uint8_t> zFlips;

    bool any() const;
    std::size_t weight() const;
};

/**
 * Measurement flips of one round for all 64 batch lanes: bit t of
 * word i is lane t's flip on ancilla i (same sites() order as the
 * scalar SyndromeRound).
 */
struct BatchSyndromeRound
{
    std::vector<std::uint64_t> xFlips;
    std::vector<std::uint64_t> zFlips;

    /** Scalar view of one lane (differential tests, decode). */
    SyndromeRound lane(std::size_t lane) const;
};

/** Executes syndrome-extraction rounds on a Pauli frame. */
class SyndromeExtractor
{
  public:
    /**
     * @param schedule The lockstep round program (must outlive the
     *                 extractor).
     */
    explicit SyndromeExtractor(const RoundSchedule &schedule);

    const Lattice &lattice() const { return _schedule->lattice(); }

    /** Ancilla coordinates in the order syndromes are reported. */
    const std::vector<Coord> &xAncillas() const { return _xAncillas; }
    const std::vector<Coord> &zAncillas() const { return _zAncillas; }

    /**
     * Execute one round.
     * @param frame Error frame to evolve.
     * @param channel Noise source; pass nullptr for noiseless
     *                execution (pure propagation of existing errors).
     * @return the ancilla flips observed this round.
     */
    SyndromeRound runRound(quantum::PauliFrame &frame,
                           quantum::ErrorChannel *channel) const;

    /**
     * Execute `rounds` rounds and collect the syndrome history.
     */
    std::vector<SyndromeRound>
    runRounds(quantum::PauliFrame &frame, quantum::ErrorChannel *channel,
              std::size_t rounds) const;

    /**
     * Execute `rounds` rounds, handing each round to `sink` as soon
     * as it is extracted instead of accumulating a history vector --
     * the round hand-off for streaming decoders, which must see
     * syndromes without an end-of-shot barrier. The round passed to
     * the sink is a scratch value that is reused; copy it if it must
     * outlive the callback.
     */
    void
    runRoundsStreaming(
        quantum::PauliFrame &frame, quantum::ErrorChannel *channel,
        std::size_t rounds,
        const std::function<void(const SyndromeRound &)> &sink) const;

    /**
     * Execute one round on 64 trials at once. The per-lane noise
     * draw order matches runRound exactly (see BatchErrorChannel),
     * so lane t reproduces a scalar run seeded with trial t's
     * substream bit for bit.
     * @param channel Batched noise source; nullptr for noiseless
     *                propagation.
     */
    BatchSyndromeRound
    runRoundBatch(quantum::BatchPauliFrame &frame,
                  quantum::BatchErrorChannel *channel) const;

    /** Execute `rounds` batched rounds and collect the history. */
    std::vector<BatchSyndromeRound>
    runRoundsBatch(quantum::BatchPauliFrame &frame,
                   quantum::BatchErrorChannel *channel,
                   std::size_t rounds) const;

  private:
    /**
     * One resolved operation of the precompiled round program:
     * lattice neighbours and syndrome slots are looked up once at
     * construction, and timing-only slots (Nop, Hadamard/Phase
     * dressing, Verify) are dropped, so the per-round executors
     * walk a flat op list instead of re-decoding the schedule.
     */
    struct RoundOp
    {
        enum class Kind : std::uint8_t
        {
            PrepZ,
            PrepX,
            Cnot,
            MeasX,
            MeasZ,
        };

        Kind kind;
        std::uint8_t xAncilla; ///< measurement reports into xFlips
        std::uint16_t slot;    ///< measurement flip-vector index
        std::uint32_t a;       ///< prep/meas qubit, or CNOT control
        std::uint32_t b;       ///< CNOT target
    };

    const RoundSchedule *_schedule;
    std::vector<Coord> _xAncillas;
    std::vector<Coord> _zAncillas;
    std::vector<std::size_t> _dataIndices;
    /** Qubit index -> slot in the xFlips/zFlips vector (-1: none). */
    std::vector<int> _syndromeSlot;
    std::vector<RoundOp> _program;

    // Batch-engine registry counters, bound once at construction
    // (never function-local statics -- registry-lifetime hazard).
    sim::metrics::Counter &_mBatchRounds;
    sim::metrics::Counter &_mBatchLaneRounds;
    sim::metrics::Counter &_mBatchWordUops;
    sim::metrics::Counter &_mBatchFillBits;
};

/**
 * Execute one canonical extraction round directly on a stabilizer
 * tableau (noise must be injected by the caller via applyPauli).
 * @return the raw ancilla measurement outcomes (not flips) in
 *         (xAncillas, zAncillas) order.
 */
SyndromeRound runRoundOnTableau(const RoundSchedule &schedule,
                                quantum::Tableau &tableau,
                                sim::Rng &rng);

} // namespace quest::qecc

#endif // QUEST_QECC_EXTRACTOR_HPP
