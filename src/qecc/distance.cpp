#include "distance.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace quest::qecc {

double
logicalErrorPerRound(double p, std::size_t d)
{
    QUEST_ASSERT(p > 0.0 && p < 1.0, "error rate %g out of range", p);
    QUEST_ASSERT(d >= 2, "distance must be at least 2");
    const double ratio = p / surfaceCodeThreshold;
    const double exponent = std::ceil(double(d) / 2.0);
    return logicalErrorPrefactor * std::pow(ratio, exponent);
}

std::size_t
chooseDistance(double p, double rounds, double logical_qubits,
               double failure_budget)
{
    QUEST_ASSERT(p < surfaceCodeThreshold,
                 "physical error rate %g is above threshold %g",
                 p, surfaceCodeThreshold);
    QUEST_ASSERT(rounds > 0 && logical_qubits > 0,
                 "rounds and qubit count must be positive");

    for (std::size_t d = 3; d <= 101; d += 2) {
        const double p_fail =
            logicalErrorPerRound(p, d) * rounds * logical_qubits;
        if (p_fail < failure_budget)
            return d;
    }
    sim::fatal("no code distance <= 101 meets the failure budget "
               "(p=%g, rounds=%g, qubits=%g)", p, rounds, logical_qubits);
}

double
fowlerQubitsPerLogical(std::size_t d)
{
    return 12.5 * double(d) * double(d);
}

double
qureQubitsPerLogical(std::size_t d)
{
    return 7.0 * double(d) * 3.0 * double(d);
}

std::size_t
correctableErrors(std::size_t d)
{
    return (d - 1) / 2;
}

} // namespace quest::qecc
