/**
 * @file
 * Code-distance selection and physical-resource arithmetic.
 *
 * Follows the standard surface-code scaling the paper builds on
 * (Fowler et al., Appendix M): the logical error rate per round of
 * a distance-d code under physical error rate p is
 *
 *     P_L(p, d) ~= A * (p / p_th)^ceil(d/2)
 *
 * with threshold p_th ~= 1e-2 and prefactor A ~= 0.03. Distance
 * selection inverts this to meet a target logical failure budget
 * over a whole computation.
 *
 * Two physical-qubit overhead models are provided:
 *  - fowlerQubitsPerLogical: 12.5 d^2 (double-defect qubit,
 *    Appendix M, quoted in Section 5.1), and
 *  - qureQubitsPerLogical: the 7d x 3d patch the paper's QuRE-based
 *    evaluation uses (Section 6.2).
 */

#ifndef QUEST_QECC_DISTANCE_HPP
#define QUEST_QECC_DISTANCE_HPP

#include <cstdint>

namespace quest::qecc {

/** Surface-code threshold error rate. */
inline constexpr double surfaceCodeThreshold = 1e-2;

/** Logical error prefactor. */
inline constexpr double logicalErrorPrefactor = 0.03;

/**
 * Logical error rate per QECC round for a distance-d code.
 * @param p Physical error rate per round (must be below threshold
 *          for the code to help).
 */
double logicalErrorPerRound(double p, std::size_t d);

/**
 * Smallest (odd) code distance whose per-round logical error rate
 * times `rounds` stays below `failure_budget` across
 * `logical_qubits` qubits.
 */
std::size_t chooseDistance(double p, double rounds,
                           double logical_qubits,
                           double failure_budget = 0.5);

/** Physical qubits per logical qubit, double-defect model. */
double fowlerQubitsPerLogical(std::size_t d);

/** Physical qubits per logical qubit, QuRE 7d x 3d patch model. */
double qureQubitsPerLogical(std::size_t d);

/** Number of correctable errors per round: floor((d-1)/2). */
std::size_t correctableErrors(std::size_t d);

} // namespace quest::qecc

#endif // QUEST_QECC_DISTANCE_HPP
