/**
 * @file
 * Syndrome-extraction protocol catalog (Sections 4.4, 7; Table 2).
 *
 * A protocol fixes (a) the quantum circuit used to extract one round
 * of error syndromes, and therefore the circuit depth and the round
 * duration for a given gate-latency technology, (b) the size of the
 * spatially-repeating unit cell, (c) the number of micro-ops in the
 * unit-cell program that the unit-cell-optimized microcode memory
 * must store, and (d) the micro-op opcode vocabulary (which sets the
 * opcode field width).
 *
 * The four designs evaluated in the paper:
 *  - Steane-style syndrome: 9 instructions per qubit per round.
 *  - Shor-style (cat state + verification): 14 instructions.
 *  - SC-17: Tomita & Svore's compact 17-qubit distance-3 design.
 *  - SC-13: the 13-qubit variant.
 */

#ifndef QUEST_QECC_PROTOCOL_HPP
#define QUEST_QECC_PROTOCOL_HPP

#include <string>
#include <vector>

#include "sim/types.hpp"
#include "tech/parameters.hpp"

namespace quest::qecc {

/** Identifies one syndrome-extraction design. */
enum class Protocol
{
    Steane,
    Shor,
    SC17,
    SC13,
};

/** All protocols in Table-2 row order. */
inline constexpr Protocol allProtocols[] = {
    Protocol::Steane, Protocol::Shor, Protocol::SC17, Protocol::SC13,
};

/** Gate class of one sub-cycle (determines its duration). */
enum class StepClass
{
    Idle,    ///< identity slot (single-qubit gate latency)
    Prep,    ///< state preparation
    Gate1,   ///< single-qubit gate (H, S)
    Cnot,    ///< two-qubit interaction
    Meas,    ///< measurement
};

/** Static description of a syndrome-extraction protocol. */
struct ProtocolSpec
{
    Protocol id;
    std::string name;

    /** Micro-ops issued per qubit per QECC round (Section 4.4:
     *  "approximately 9 to 14 instructions long"). */
    std::size_t uopsPerQubit;

    /** Qubits in the spatially-repeating unit cell. */
    std::size_t unitCellQubits;

    /** Micro-ops in the stored unit-cell program (Table 2). */
    std::size_t unitCellUops;

    /** Distinct micro-op opcodes the protocol needs. */
    std::size_t opcodeCount;

    /** Gate class of each pipeline sub-cycle, in execution order. */
    std::vector<StepClass> steps;

    /** Circuit depth (number of sub-cycles). */
    std::size_t depth() const { return steps.size(); }

    /**
     * Duration of one QECC round for the given technology: the sum
     * of the sub-cycle gate latencies. For the Steane-style circuit
     * this reproduces the paper's Table-1 T_ecc column.
     */
    sim::Tick roundDuration(const tech::GateLatencies &lat) const;
};

/** Specification of a protocol. */
const ProtocolSpec &protocolSpec(Protocol p);

/** Protocol short name, e.g. "Steane" / "SC-17". */
std::string protocolName(Protocol p);

} // namespace quest::qecc

#endif // QUEST_QECC_PROTOCOL_HPP
