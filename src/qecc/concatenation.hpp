/**
 * @file
 * Concatenated-code support (paper Section 9).
 *
 * "QuEST can work with concatenation codes where the first level
 * (inner code) is handled by microcode and higher level (outer
 * code) concatenations can be handled by software."
 *
 * This module models that split for Steane's [[7,1,3]] code. Under
 * concatenation, a level-L logical qubit is built from 7 level-
 * (L-1) qubits, the logical error rate squares per level
 * (p_{l+1} = c * p_l^2 below threshold), and each level runs its
 * own error-correction cycle -- the inner level at the physical
 * gate rate, every outer level a constant factor slower because its
 * "gates" are fault-tolerant operations on the level below.
 *
 * Instruction-delivery consequences:
 *  - all-software: every physical qubit at the innermost level
 *    consumes EC instructions at the physical rate (the baseline).
 *  - hybrid (QuEST): the microcode replays the level-1 EC cycle,
 *    so software only delivers instructions for level >= 2 blocks,
 *    which are 7x fewer and cycle slower by the level-1 EC factor.
 */

#ifndef QUEST_QECC_CONCATENATION_HPP
#define QUEST_QECC_CONCATENATION_HPP

#include <cstdint>

namespace quest::qecc {

/** Parameters of the concatenated [[7,1,3]] (Steane) code. */
struct ConcatenationSpec
{
    std::size_t blockSize = 7;    ///< physical qubits per block
    double threshold = 1e-4;      ///< concatenation threshold
    /** EC instructions per qubit per cycle at one level (syndrome
     *  extraction for both X and Z generators of [[7,1,3]]). */
    std::size_t uopsPerQubitPerCycle = 12;
    /** Slowdown of each outer level's EC cycle relative to the
     *  level below it (fault-tolerant gate depth). */
    double cycleSlowdown = 10.0;

    /** Logical error rate after one level on inputs of rate p. */
    double
    levelError(double p) const
    {
        return (p / threshold) * p; // c * p^2 with c = 1/threshold
    }
};

/** Resource summary for a concatenated configuration. */
struct ConcatenationPlan
{
    std::size_t levels = 1;
    double outputError = 0.0;
    double physicalQubitsPerLogical = 7;
    /** EC instruction rate per logical qubit, instructions per
     *  physical-cycle, software-managed everything. */
    double softwareInstrPerCycle = 0;
    /** Same, with level-1 EC in QuEST microcode (only levels >= 2
     *  are software's problem). */
    double hybridInstrPerCycle = 0;

    double
    savings() const
    {
        return hybridInstrPerCycle > 0
            ? softwareInstrPerCycle / hybridInstrPerCycle
            : softwareInstrPerCycle; // all levels in hardware
    }
};

/** Analytical model of the hardware/software concatenation split. */
class ConcatenationModel
{
  public:
    explicit ConcatenationModel(
        ConcatenationSpec spec = ConcatenationSpec{})
        : _spec(spec)
    {}

    const ConcatenationSpec &spec() const { return _spec; }

    /** Levels needed to reach `target` from physical rate `p`. */
    std::size_t levelsNeeded(double p, double target) const;

    /** Error rate after `levels` levels. */
    double outputError(double p, std::size_t levels) const;

    /**
     * Full plan: qubit overhead and the software-vs-hybrid EC
     * instruction rates per logical qubit.
     * @param hardware_levels How many inner levels the microcode
     *        absorbs (the paper's proposal is 1).
     */
    ConcatenationPlan plan(double p, double target,
                           std::size_t hardware_levels = 1) const;

  private:
    ConcatenationSpec _spec;
};

} // namespace quest::qecc

#endif // QUEST_QECC_CONCATENATION_HPP
