/**
 * @file
 * Lockstep micro-op schedules for syndrome extraction.
 *
 * A RoundSchedule is the VLIW-style program the microcode pipeline
 * replays: for every sub-cycle of the QECC round it assigns one
 * micro-op to every qubit of the lattice (Section 4.3: "the physical
 * instruction is designed similar to a very long instruction word
 * and composed of a uop per qubit ... executed in lockstep").
 *
 * Convention on stabilizer types: an X ancilla measures an X-type
 * stabilizer (product of X on its data neighbours) and therefore
 * detects phase-flip (Z) errors; a Z ancilla measures the Z-type
 * stabilizer and detects bit-flip (X) errors.
 */

#ifndef QUEST_QECC_SCHEDULE_HPP
#define QUEST_QECC_SCHEDULE_HPP

#include <vector>

#include "isa/opcodes.hpp"
#include "lattice.hpp"
#include "protocol.hpp"

namespace quest::qecc {

/** One lockstep sub-cycle: a micro-op per qubit. */
struct SubCycle
{
    StepClass stepClass;
    std::vector<isa::PhysOpcode> uops; ///< indexed by linear qubit index
};

/** The per-round micro-op program for one lattice. */
class RoundSchedule
{
  public:
    RoundSchedule(const Lattice &lattice, const ProtocolSpec &spec)
        : _lattice(&lattice), _spec(&spec)
    {}

    const Lattice &lattice() const { return *_lattice; }
    const ProtocolSpec &spec() const { return *_spec; }

    std::size_t depth() const { return _subCycles.size(); }
    const SubCycle &subCycle(std::size_t i) const
    {
        return _subCycles.at(i);
    }

    void addSubCycle(SubCycle sc) { _subCycles.push_back(std::move(sc)); }

    /** Total non-NOP micro-ops across the round. */
    std::size_t activeUopCount() const;

    /** Total micro-op slots (qubits x depth). */
    std::size_t
    totalUopSlots() const
    {
        return depth() * _lattice->numQubits();
    }

  private:
    const Lattice *_lattice;
    const ProtocolSpec *_spec;
    std::vector<SubCycle> _subCycles;
};

/**
 * Build the canonical syndrome-extraction schedule for a lattice:
 * ancilla preparation, four direction-interleaved CNOT sub-cycles
 * (order N, W, E, S; X and Z ancillas never contend for a data qubit
 * within a sub-cycle) and ancilla measurement, padded with the
 * protocol's extra verification/idle steps.
 */
RoundSchedule buildRoundSchedule(const Lattice &lattice,
                                 const ProtocolSpec &spec);

/**
 * Verify the lockstep two-qubit structural invariant: within each
 * sub-cycle no data qubit is touched by more than one two-qubit
 * micro-op and every two-qubit micro-op has an on-lattice partner.
 * @return true when the schedule is well formed.
 */
bool validateSchedule(const RoundSchedule &schedule);

/** Direction of a directional CNOT micro-op. */
Direction cnotDirection(isa::PhysOpcode op);

/** The control-side CNOT opcode for a direction. */
isa::PhysOpcode cnotOpcode(Direction dir);

/** The target-side CNOT opcode for a direction. */
isa::PhysOpcode cnotTargetOpcode(Direction dir);

} // namespace quest::qecc

#endif // QUEST_QECC_SCHEDULE_HPP
