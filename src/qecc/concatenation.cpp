#include "concatenation.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace quest::qecc {

std::size_t
ConcatenationModel::levelsNeeded(double p, double target) const
{
    QUEST_ASSERT(p > 0.0 && p < 1.0, "error rate %g out of range", p);
    QUEST_ASSERT(target > 0.0, "target must be positive");
    QUEST_ASSERT(p < _spec.threshold,
                 "physical rate %g at or above the concatenation "
                 "threshold %g", p, _spec.threshold);
    double eps = p;
    std::size_t levels = 0;
    // Tolerate one part in 1e9 so exact-power-of-ten targets are
    // not missed by floating-point rounding.
    while (eps > target * (1.0 + 1e-9)) {
        eps = _spec.levelError(eps);
        ++levels;
        QUEST_ASSERT(levels <= 16, "concatenation depth exploded");
    }
    return std::max<std::size_t>(levels, 1);
}

double
ConcatenationModel::outputError(double p, std::size_t levels) const
{
    double eps = p;
    for (std::size_t l = 0; l < levels; ++l)
        eps = _spec.levelError(eps);
    return eps;
}

ConcatenationPlan
ConcatenationModel::plan(double p, double target,
                         std::size_t hardware_levels) const
{
    ConcatenationPlan out;
    out.levels = levelsNeeded(p, target);
    out.outputError = outputError(p, out.levels);
    out.physicalQubitsPerLogical =
        std::pow(double(_spec.blockSize), double(out.levels));

    // Every level runs EC continuously over its qubits. Level l
    // (1-indexed) spans blockSize^(levels - l + 1) qubits of the
    // level below and cycles slower by cycleSlowdown^(l-1).
    double software = 0.0;
    double hybrid = 0.0;
    for (std::size_t l = 1; l <= out.levels; ++l) {
        const double qubits_below = std::pow(
            double(_spec.blockSize), double(out.levels - l + 1));
        const double rate = double(_spec.uopsPerQubitPerCycle)
            / std::pow(_spec.cycleSlowdown, double(l - 1));
        const double instr = qubits_below * rate;
        software += instr;
        if (l > hardware_levels)
            hybrid += instr;
    }
    out.softwareInstrPerCycle = software;
    out.hybridInstrPerCycle = hybrid;
    return out;
}

} // namespace quest::qecc
