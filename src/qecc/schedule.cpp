#include "schedule.hpp"

#include "sim/logging.hpp"

namespace quest::qecc {

using isa::PhysOpcode;

std::size_t
RoundSchedule::activeUopCount() const
{
    std::size_t n = 0;
    for (const auto &sc : _subCycles)
        for (PhysOpcode op : sc.uops)
            if (op != PhysOpcode::Nop)
                ++n;
    return n;
}

Direction
cnotDirection(PhysOpcode op)
{
    switch (op) {
      case PhysOpcode::CnotN:
      case PhysOpcode::CnotTargetN:
        return Direction::North;
      case PhysOpcode::CnotE:
      case PhysOpcode::CnotTargetE:
        return Direction::East;
      case PhysOpcode::CnotS:
      case PhysOpcode::CnotTargetS:
        return Direction::South;
      case PhysOpcode::CnotW:
      case PhysOpcode::CnotTargetW:
        return Direction::West;
      default:
        sim::panic("opcode %s has no direction",
                   isa::physOpcodeName(op).c_str());
    }
}

PhysOpcode
cnotOpcode(Direction dir)
{
    switch (dir) {
      case Direction::North: return PhysOpcode::CnotN;
      case Direction::East: return PhysOpcode::CnotE;
      case Direction::South: return PhysOpcode::CnotS;
      case Direction::West: return PhysOpcode::CnotW;
    }
    sim::panic("invalid direction %d", int(dir));
}

PhysOpcode
cnotTargetOpcode(Direction dir)
{
    switch (dir) {
      case Direction::North: return PhysOpcode::CnotTargetN;
      case Direction::East: return PhysOpcode::CnotTargetE;
      case Direction::South: return PhysOpcode::CnotTargetS;
      case Direction::West: return PhysOpcode::CnotTargetW;
    }
    sim::panic("invalid direction %d", int(dir));
}

namespace {

/** All-NOP sub-cycle of the right width. */
SubCycle
blankSubCycle(const Lattice &lattice, StepClass cls)
{
    return SubCycle{cls,
        std::vector<PhysOpcode>(lattice.numQubits(), PhysOpcode::Nop)};
}

/** Preparation sub-cycle: |+> on X ancillas, |0> on Z ancillas. */
SubCycle
prepSubCycle(const Lattice &lattice)
{
    SubCycle sc = blankSubCycle(lattice, StepClass::Prep);
    for (const Coord c : lattice.sites(SiteType::XAncilla))
        sc.uops[lattice.index(c)] = PhysOpcode::PrepX;
    for (const Coord c : lattice.sites(SiteType::ZAncilla))
        sc.uops[lattice.index(c)] = PhysOpcode::PrepZ;
    return sc;
}

/**
 * One CNOT interaction sub-cycle in direction `dir`: every X
 * ancilla acts as control towards its data neighbour, every Z
 * ancilla as target from its data neighbour. X and Z ancillas touch
 * disjoint data sublattices within a direction, so no data qubit is
 * contended.
 */
SubCycle
cnotSubCycle(const Lattice &lattice, Direction dir)
{
    SubCycle sc = blankSubCycle(lattice, StepClass::Cnot);
    for (const Coord c : lattice.sites(SiteType::XAncilla)) {
        if (auto n = lattice.neighbour(c, dir); n && lattice.isData(*n))
            sc.uops[lattice.index(c)] = cnotOpcode(dir);
    }
    for (const Coord c : lattice.sites(SiteType::ZAncilla)) {
        if (auto n = lattice.neighbour(c, dir); n && lattice.isData(*n))
            sc.uops[lattice.index(c)] = cnotTargetOpcode(dir);
    }
    return sc;
}

/** Measurement sub-cycle: X basis on X ancillas, Z on Z ancillas. */
SubCycle
measSubCycle(const Lattice &lattice)
{
    SubCycle sc = blankSubCycle(lattice, StepClass::Meas);
    for (const Coord c : lattice.sites(SiteType::XAncilla))
        sc.uops[lattice.index(c)] = PhysOpcode::MeasX;
    for (const Coord c : lattice.sites(SiteType::ZAncilla))
        sc.uops[lattice.index(c)] = PhysOpcode::MeasZ;
    return sc;
}

/** Cat-state verification sub-cycle (Shor-style extraction). */
SubCycle
verifySubCycle(const Lattice &lattice)
{
    SubCycle sc = blankSubCycle(lattice, StepClass::Cnot);
    for (const Coord c : lattice.sites(SiteType::XAncilla))
        sc.uops[lattice.index(c)] = PhysOpcode::Verify;
    for (const Coord c : lattice.sites(SiteType::ZAncilla))
        sc.uops[lattice.index(c)] = PhysOpcode::Verify;
    return sc;
}

/** Hadamard dressing sub-cycle (SC-13 CZ-based extraction). */
SubCycle
hadamardSubCycle(const Lattice &lattice)
{
    SubCycle sc = blankSubCycle(lattice, StepClass::Gate1);
    for (const Coord c : lattice.sites(SiteType::XAncilla))
        sc.uops[lattice.index(c)] = PhysOpcode::Hadamard;
    return sc;
}

/** Number of steps of a given class in a protocol. */
std::size_t
countSteps(const ProtocolSpec &spec, StepClass cls)
{
    std::size_t n = 0;
    for (StepClass s : spec.steps)
        if (s == cls)
            ++n;
    return n;
}

} // namespace

RoundSchedule
buildRoundSchedule(const Lattice &lattice, const ProtocolSpec &spec)
{
    RoundSchedule sched(lattice, spec);

    // The four interaction directions. Order N, W, E, S keeps each
    // data qubit's interactions serialized across sub-cycles.
    static constexpr Direction order[] = {
        Direction::North, Direction::West, Direction::East,
        Direction::South,
    };

    // The *last* four CNOT steps are the syndrome interactions; any
    // earlier interaction steps are cat-state construction/checks
    // (Shor-style extraction), modelled as verify slots. Likewise
    // only the final measurement step reads the syndrome.
    const std::size_t total_cnots = countSteps(spec, StepClass::Cnot);
    const std::size_t total_meas = countSteps(spec, StepClass::Meas);
    QUEST_ASSERT(total_cnots >= 4,
                 "protocol %s needs at least 4 interaction steps",
                 spec.name.c_str());
    QUEST_ASSERT(total_meas >= 1, "protocol %s needs a measurement step",
                 spec.name.c_str());

    std::size_t cnot_seen = 0;
    std::size_t meas_seen = 0;
    for (StepClass cls : spec.steps) {
        switch (cls) {
          case StepClass::Idle:
            sched.addSubCycle(blankSubCycle(lattice, StepClass::Idle));
            break;
          case StepClass::Prep:
            sched.addSubCycle(prepSubCycle(lattice));
            break;
          case StepClass::Gate1:
            sched.addSubCycle(hadamardSubCycle(lattice));
            break;
          case StepClass::Cnot:
            ++cnot_seen;
            if (cnot_seen + 4 > total_cnots) {
                const std::size_t k = cnot_seen + 4 - total_cnots - 1;
                sched.addSubCycle(cnotSubCycle(lattice, order[k]));
            } else {
                sched.addSubCycle(verifySubCycle(lattice));
            }
            break;
          case StepClass::Meas:
            ++meas_seen;
            if (meas_seen == total_meas)
                sched.addSubCycle(measSubCycle(lattice));
            else
                sched.addSubCycle(verifySubCycle(lattice));
            break;
        }
    }
    return sched;
}

bool
validateSchedule(const RoundSchedule &schedule)
{
    const Lattice &lattice = schedule.lattice();
    for (std::size_t s = 0; s < schedule.depth(); ++s) {
        const SubCycle &sc = schedule.subCycle(s);
        if (sc.uops.size() != lattice.numQubits())
            return false;

        std::vector<std::uint8_t> touched(lattice.numQubits(), 0);
        for (std::size_t q = 0; q < sc.uops.size(); ++q) {
            if (!isa::isTwoQubit(sc.uops[q]))
                continue;
            const Coord c = lattice.coord(q);
            const auto n = lattice.neighbour(c,
                                             cnotDirection(sc.uops[q]));
            if (!n || !lattice.isData(*n))
                return false;
            const std::size_t partner = lattice.index(*n);
            if (touched[q] || touched[partner])
                return false;
            touched[q] = 1;
            touched[partner] = 1;
        }
    }
    return true;
}

} // namespace quest::qecc
