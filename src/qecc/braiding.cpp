#include "braiding.hpp"

#include <cstdlib>

#include "sim/logging.hpp"

namespace quest::qecc {

bool
squaresConflict(const MaskSquare &a, const MaskSquare &b)
{
    // Conflict when the squares overlap or are directly adjacent
    // (their masked perimeters would merge).
    const int a_r0 = a.topLeft.row - 1;
    const int a_c0 = a.topLeft.col - 1;
    const int a_r1 = a.topLeft.row + int(a.size);
    const int a_c1 = a.topLeft.col + int(a.size);
    const int b_r0 = b.topLeft.row;
    const int b_c0 = b.topLeft.col;
    const int b_r1 = b.topLeft.row + int(b.size) - 1;
    const int b_c1 = b.topLeft.col + int(b.size) - 1;
    const bool row_sep = a_r1 < b_r0 || b_r1 < a_r0;
    const bool col_sep = a_c1 < b_c0 || b_c1 < a_c0;
    return !(row_sep || col_sep);
}

void
BraidPlanner::appendWalk(std::vector<Coord> &path, Coord from,
                         Coord to)
{
    QUEST_ASSERT(from.row == to.row || from.col == to.col,
                 "braid walks are axis-aligned");
    QUEST_ASSERT(std::abs(from.row - to.row) % 2 == 0
                 && std::abs(from.col - to.col) % 2 == 0,
                 "braid endpoints must share sublattice alignment");
    Coord cur = from;
    while (cur.row != to.row) {
        cur.row += cur.row < to.row ? 2 : -2;
        path.push_back(cur);
    }
    while (cur.col != to.col) {
        cur.col += cur.col < to.col ? 2 : -2;
        path.push_back(cur);
    }
}

bool
BraidPlanner::squareFits(Coord top_left, std::size_t size) const
{
    // The square itself plus its one-site perimeter must fit.
    return _lattice->contains(Coord{top_left.row - 1,
                                    top_left.col - 1})
        && _lattice->contains(Coord{top_left.row + int(size),
                                    top_left.col + int(size)});
}

BraidPlan
BraidPlanner::planLoop(const MaskSquare &moving,
                       const MaskSquare &around) const
{
    BraidPlan plan;
    const int s = int(moving.size);

    // Clearance ring: the moving square's top-left positions that
    // keep exactly one free site between it and the target. This is
    // the tightest loop that still encircles the target without the
    // masked regions merging -- and on the side facing the target's
    // partner defect it is the only loop that threads the d-site
    // channel between them.
    const int north = around.topLeft.row - s - 1;
    const int west = around.topLeft.col - s - 1;
    const int south = around.topLeft.row + int(around.size) + 1;
    const int east = around.topLeft.col + int(around.size) + 1;

    // Keep sublattice alignment: ring coordinates must differ from
    // the start by even amounts. Shift outward by one if needed.
    const Coord start = moving.topLeft;
    const int nr = north - std::abs(north - start.row) % 2;
    const int wr = west - std::abs(west - start.col) % 2;
    const int sr = south + std::abs(south - start.row) % 2;
    const int er = east + std::abs(east - start.col) % 2;

    const Coord nw{nr, wr};
    const Coord ne{nr, er};
    const Coord se{sr, er};
    const Coord sw{sr, wr};

    plan.positions.push_back(start);
    // Approach the ring: go to the NW corner (row first, then col).
    appendWalk(plan.positions, start, Coord{nw.row, start.col});
    appendWalk(plan.positions, Coord{nw.row, start.col}, nw);
    // Circle the target.
    appendWalk(plan.positions, nw, ne);
    appendWalk(plan.positions, ne, se);
    appendWalk(plan.positions, se, sw);
    appendWalk(plan.positions, sw, nw);
    // Return home.
    appendWalk(plan.positions, nw, Coord{nw.row, start.col});
    appendWalk(plan.positions, Coord{nw.row, start.col}, start);

    // Reject plans that leave the lattice.
    for (const Coord pos : plan.positions)
        if (!squareFits(pos, moving.size))
            return BraidPlan{};
    return plan;
}

bool
BraidPlanner::validate(const BraidPlan &plan, std::size_t moving_size,
                       const std::vector<MaskSquare> &obstacles) const
{
    if (plan.positions.empty())
        return false;
    for (std::size_t i = 0; i < plan.positions.size(); ++i) {
        const Coord pos = plan.positions[i];
        if (!squareFits(pos, moving_size))
            return false;
        // Steps must be single +-2 axis moves.
        if (i > 0) {
            const Coord prev = plan.positions[i - 1];
            const int dr = std::abs(pos.row - prev.row);
            const int dc = std::abs(pos.col - prev.col);
            if (!((dr == 2 && dc == 0) || (dr == 0 && dc == 2)))
                return false;
        }
        const MaskSquare here{pos, moving_size};
        for (const MaskSquare &obstacle : obstacles)
            if (squaresConflict(here, obstacle))
                return false;
    }
    return true;
}

} // namespace quest::qecc
