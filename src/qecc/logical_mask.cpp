#include "logical_mask.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace quest::qecc {

LogicalQubit::LogicalQubit(const Lattice &lattice, Coord anchor,
                           std::size_t d)
    : _lattice(&lattice), _d(d)
{
    QUEST_ASSERT(d >= 2, "logical qubit distance must be >= 2");
    // Each defect square spans d lattice sites; the squares are
    // separated horizontally by d data qubits (2d sites).
    _a = MaskSquare{anchor, d};
    _b = MaskSquare{Coord{anchor.row, anchor.col + int(2 * d)}, d};
}

bool
LogicalQubit::fits() const
{
    const auto fits_square = [&](const MaskSquare &s) {
        return _lattice->contains(s.topLeft)
            && _lattice->contains(Coord{s.topLeft.row + int(s.size) - 1,
                                        s.topLeft.col + int(s.size) - 1});
    };
    return fits_square(_a) && fits_square(_b);
}

namespace {

/** Collect ancilla indices in and on the perimeter of a square. */
void
collectMaskedAncillas(const Lattice &lattice, const MaskSquare &square,
                      std::vector<std::size_t> &out)
{
    // The masked area includes a one-site perimeter ring around the
    // square (Section 5.1: "inside the area and on the perimeter").
    for (int r = square.topLeft.row - 1;
         r <= square.topLeft.row + int(square.size); ++r) {
        for (int c = square.topLeft.col - 1;
             c <= square.topLeft.col + int(square.size); ++c) {
            const Coord coord{r, c};
            if (!lattice.contains(coord))
                continue;
            if (lattice.isAncilla(coord))
                out.push_back(lattice.index(coord));
        }
    }
}

} // namespace

std::vector<std::size_t>
LogicalQubit::maskedAncillas() const
{
    std::vector<std::size_t> out;
    collectMaskedAncillas(*_lattice, _a, out);
    collectMaskedAncillas(*_lattice, _b, out);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::vector<std::size_t>
LogicalQubit::footprint() const
{
    std::vector<std::size_t> out;
    const auto collect = [&](const MaskSquare &s) {
        for (int r = s.topLeft.row; r < s.topLeft.row + int(s.size); ++r) {
            for (int c = s.topLeft.col; c < s.topLeft.col + int(s.size);
                 ++c) {
                const Coord coord{r, c};
                if (_lattice->contains(coord))
                    out.push_back(_lattice->index(coord));
            }
        }
    };
    collect(_a);
    collect(_b);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

void
LogicalQubit::move(int d_row, int d_col)
{
    _a.topLeft.row += d_row;
    _a.topLeft.col += d_col;
    _b.topLeft.row += d_row;
    _b.topLeft.col += d_col;
}

void
LogicalQubit::expandA(std::size_t amount)
{
    _a.topLeft.row -= int(amount);
    _a.topLeft.col -= int(amount);
    _a.size += 2 * amount;
}

void
LogicalQubit::contractA(std::size_t amount)
{
    QUEST_ASSERT(_a.size > 2 * amount,
                 "contraction would eliminate defect A (size %zu)",
                 _a.size);
    _a.topLeft.row += int(amount);
    _a.topLeft.col += int(amount);
    _a.size -= 2 * amount;
}

void
FullMask::apply(const LogicalQubit &lq, bool masked_value)
{
    for (std::size_t q : lq.maskedAncillas())
        set(q, masked_value);
}

void
FullMask::clear()
{
    for (auto &b : _bits)
        b = 0;
}

std::size_t
FullMask::maskedCount() const
{
    std::size_t n = 0;
    for (auto b : _bits)
        n += b;
    return n;
}

CoalescedMask::CoalescedMask(const Lattice &lattice, std::size_t d)
    : _lattice(&lattice), _d(d)
{
    QUEST_ASSERT(d >= 1, "tile size must be positive");
    const std::size_t tile_rows = (lattice.rows() + d - 1) / d;
    _tileCols = (lattice.cols() + d - 1) / d;
    _bits.assign(tile_rows * _tileCols, 0);
}

std::size_t
CoalescedMask::tileOf(std::size_t q) const
{
    const Coord c = _lattice->coord(q);
    return (std::size_t(c.row) / _d) * _tileCols
        + std::size_t(c.col) / _d;
}

void
CoalescedMask::apply(const LogicalQubit &lq, bool masked_value)
{
    for (std::size_t q : lq.maskedAncillas())
        setTile(tileOf(q), masked_value);
}

void
CoalescedMask::clear()
{
    for (auto &b : _bits)
        b = 0;
}

std::size_t
CoalescedMask::maskedTileCount() const
{
    std::size_t n = 0;
    for (auto b : _bits)
        n += b;
    return n;
}

} // namespace quest::qecc
