#include "protocol.hpp"

#include "sim/logging.hpp"

namespace quest::qecc {

sim::Tick
ProtocolSpec::roundDuration(const tech::GateLatencies &lat) const
{
    sim::Tick total = 0;
    for (StepClass step : steps) {
        switch (step) {
          case StepClass::Idle: total += lat.t1; break;
          case StepClass::Prep: total += lat.tPrep; break;
          case StepClass::Gate1: total += lat.t1; break;
          case StepClass::Cnot: total += lat.tCnot; break;
          case StepClass::Meas: total += lat.tMeas; break;
        }
    }
    return total;
}

namespace {

using SC = StepClass;

const ProtocolSpec steaneSpec = {
    Protocol::Steane,
    "Steane",
    9,   // uops per qubit per round
    25,  // 5x5 unit cell (Figure 17)
    148, // stored unit-cell program (Table 2)
    12,  // opcodes: NOP, PREP_Z/X, MEAS_Z/X, H, CNOT x4, CNOTT, S
    // Canonical circuit: idle, prepare ancilla, four CNOTs, measure.
    // Sum of latencies == Table 1 T_ecc for every technology.
    { SC::Idle, SC::Prep, SC::Cnot, SC::Cnot, SC::Cnot, SC::Cnot,
      SC::Meas },
};

const ProtocolSpec shorSpec = {
    Protocol::Shor,
    "Shor",
    14,  // cat-state preparation and verification add steps
    25,
    300, // Table 2
    14,  // adds VERIFY and cat-state preparation opcodes
    // Cat-state prep (2 steps), verification CNOT + measurement,
    // then the four syndrome CNOTs and the final measurement.
    { SC::Idle, SC::Prep, SC::Prep, SC::Cnot, SC::Cnot, SC::Meas,
      SC::Cnot, SC::Cnot, SC::Cnot, SC::Cnot, SC::Meas },
};

const ProtocolSpec sc17Spec = {
    Protocol::SC17,
    "SC-17",
    8,
    17,  // Tomita & Svore distance-3 design
    136, // == 17 qubits x 8 uops (Table 2)
    8,   // compact vocabulary: NOP, PREP, MEAS, H, CNOT x4
    { SC::Prep, SC::Cnot, SC::Cnot, SC::Cnot, SC::Cnot, SC::Meas },
};

const ProtocolSpec sc13Spec = {
    Protocol::SC13,
    "SC-13",
    11,
    13,
    147, // Table 2
    10,  // CZ-based extraction needs H dressing opcodes
    { SC::Prep, SC::Gate1, SC::Cnot, SC::Cnot, SC::Cnot, SC::Cnot,
      SC::Gate1, SC::Meas },
};

} // namespace

const ProtocolSpec &
protocolSpec(Protocol p)
{
    switch (p) {
      case Protocol::Steane: return steaneSpec;
      case Protocol::Shor: return shorSpec;
      case Protocol::SC17: return sc17Spec;
      case Protocol::SC13: return sc13Spec;
    }
    sim::panic("invalid protocol %d", int(p));
}

std::string
protocolName(Protocol p)
{
    return protocolSpec(p).name;
}

} // namespace quest::qecc
