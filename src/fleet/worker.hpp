/**
 * @file
 * The fleet worker: `quest worker` — a blocking loop that pulls
 * tasks from a manager, executes them with the shared deterministic
 * TaskRunner, and ships back bit-exact partials.
 *
 * The worker is intentionally dumb: no retry logic, no local state
 * worth preserving. All robustness lives in the manager; a worker
 * that dies, stalls or drops a result costs the fleet one lease,
 * never a byte of output.
 *
 * Chaos mode (sim::FaultInjector sites, seeded and reproducible)
 * exists so the tests and the CI smoke job can exercise the
 * manager's failure paths on demand:
 *  - WorkerKill: sever the connection mid-task and exit, as a
 *    crashed process would.
 *  - WorkerStall: sit on the finished result past the lease.
 *  - ResultDrop: complete the task but never transmit it.
 *  - DuplicateResult: transmit the result twice.
 */

#ifndef QUEST_FLEET_WORKER_HPP
#define QUEST_FLEET_WORKER_HPP

#include <cstdint>
#include <string>

#include "sim/fault_injector.hpp"

namespace quest::fleet {

/** Worker tuning and chaos knobs. */
struct WorkerConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::string name = "worker";

    int connectTimeoutMs = 10000; ///< manager may come up late
    int heartbeatMs = 400;        ///< idle heartbeat cadence
    std::uint64_t maxTasks = 0;   ///< exit after N tasks (0 = run on)

    /** Chaos fault rates (WorkerKill/Stall/Drop/Duplicate sites). */
    sim::FaultConfig chaos = sim::FaultConfig::none();
    int stallMs = 1000; ///< stall duration when WorkerStall fires
};

/** Worker exit status (the process exit code of `quest worker`). */
enum class WorkerExit : int
{
    Shutdown = 0,     ///< manager said the job is done
    ConnectionLost = 1, ///< manager gone (or never reachable)
    KillInjected = 2, ///< chaos WorkerKill fired
    TaskLimit = 3,    ///< maxTasks reached
};

/** Run the worker loop until shutdown, disconnect or chaos. */
WorkerExit runWorker(const WorkerConfig &cfg);

} // namespace quest::fleet

#endif // QUEST_FLEET_WORKER_HPP
