#include "protocol.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace quest::fleet {

void
Socket::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

Socket
listenTcp(std::uint16_t port, std::uint16_t &bound_port)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return {};
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return {};
    if (::listen(sock.fd(), 64) != 0)
        return {};

    socklen_t len = sizeof(addr);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return {};
    bound_port = ntohs(addr.sin_port);
    return sock;
}

Socket
acceptClient(const Socket &listener)
{
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0)
        return {};
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
}

Socket
connectTcp(const std::string &host, std::uint16_t port,
           int timeout_ms)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        return {};

    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::milliseconds(timeout_ms);
    for (;;) {
        Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
        if (!sock.valid())
            return {};
        if (::connect(sock.fd(),
                      reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            const int one = 1;
            ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            return sock;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            return {};
        // The manager may still be binding; back off briefly.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

bool
setNonBlocking(const Socket &sock)
{
    const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
    return flags >= 0
        && ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK) == 0;
}

namespace {

/** Write the whole buffer, waiting out EAGAIN with poll. */
bool
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n > 0) {
            data += n;
            len -= std::size_t(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd{fd, POLLOUT, 0};
            // A peer that stops draining for this long is treated
            // as dead; the lease machinery recovers the task.
            if (::poll(&pfd, 1, 5000) <= 0)
                return false;
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace

bool
sendFrame(const Socket &sock, const Json &msg)
{
    const std::string payload = msg.dump();
    if (payload.size() > maxFramePayload)
        return false;
    char header[4];
    const std::uint32_t len = std::uint32_t(payload.size());
    header[0] = char(len & 0xFF);
    header[1] = char((len >> 8) & 0xFF);
    header[2] = char((len >> 16) & 0xFF);
    header[3] = char((len >> 24) & 0xFF);
    return writeAll(sock.fd(), header, 4)
        && writeAll(sock.fd(), payload.data(), payload.size());
}

namespace {

/** Read exactly len bytes, honouring the deadline. */
int
readFully(int fd, char *data, std::size_t len, int timeout_ms)
{
    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::milliseconds(timeout_ms);
    std::size_t got = 0;
    while (got < len) {
        const auto now = std::chrono::steady_clock::now();
        const int remain = int(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count());
        pollfd pfd{fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, remain < 0 ? 0 : remain);
        if (pr == 0)
            return got == 0 ? 0 : -1; // mid-frame timeout = fault
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        const ssize_t n = ::recv(fd, data + got, len - got, 0);
        if (n == 0)
            return -1;
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN
                || errno == EWOULDBLOCK)
                continue;
            return -1;
        }
        got += std::size_t(n);
    }
    return 1;
}

} // namespace

int
recvFrame(const Socket &sock, Json &out, int timeout_ms)
{
    char header[4];
    const int hr = readFully(sock.fd(), header, 4, timeout_ms);
    if (hr <= 0)
        return hr;
    const std::uint32_t len = std::uint32_t(std::uint8_t(header[0]))
        | std::uint32_t(std::uint8_t(header[1])) << 8
        | std::uint32_t(std::uint8_t(header[2])) << 16
        | std::uint32_t(std::uint8_t(header[3])) << 24;
    if (len > maxFramePayload)
        return -1;
    std::string payload(len, '\0');
    if (readFully(sock.fd(), payload.data(), len, timeout_ms) <= 0)
        return -1;
    return Json::parse(payload, out) ? 1 : -1;
}

bool
FrameReader::pump(const Socket &sock)
{
    if (_poisoned)
        return false;
    char chunk[4096];
    for (;;) {
        const ssize_t n =
            ::recv(sock.fd(), chunk, sizeof(chunk), 0);
        if (n > 0) {
            _buffer.append(chunk, std::size_t(n));
            // Early length sanity check: reject a hostile header
            // before buffering toward it.
            if (_buffer.size() >= 4) {
                const std::uint32_t len =
                    std::uint32_t(std::uint8_t(_buffer[0]))
                    | std::uint32_t(std::uint8_t(_buffer[1])) << 8
                    | std::uint32_t(std::uint8_t(_buffer[2])) << 16
                    | std::uint32_t(std::uint8_t(_buffer[3])) << 24;
                if (len > maxFramePayload) {
                    _poisoned = true;
                    return false;
                }
            }
            continue;
        }
        if (n == 0)
            return false; // orderly shutdown
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        return false;
    }
}

bool
FrameReader::next(Json &out)
{
    if (_buffer.size() < 4)
        return false;
    const std::uint32_t len = std::uint32_t(std::uint8_t(_buffer[0]))
        | std::uint32_t(std::uint8_t(_buffer[1])) << 8
        | std::uint32_t(std::uint8_t(_buffer[2])) << 16
        | std::uint32_t(std::uint8_t(_buffer[3])) << 24;
    if (_buffer.size() < 4 + std::size_t(len))
        return false;
    const std::string payload = _buffer.substr(4, len);
    _buffer.erase(0, 4 + std::size_t(len));
    if (!Json::parse(payload, out)) {
        _poisoned = true;
        return false;
    }
    return true;
}

} // namespace quest::fleet
