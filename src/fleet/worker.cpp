#include "worker.hpp"

#include <chrono>
#include <thread>

#include "protocol.hpp"
#include "sweep.hpp"

namespace quest::fleet {

WorkerExit
runWorker(const WorkerConfig &cfg)
{
    Socket sock =
        connectTcp(cfg.host, cfg.port, cfg.connectTimeoutMs);
    if (!sock.valid())
        return WorkerExit::ConnectionLost;

    Json hello = Json::object();
    hello.set("type", Json("hello"));
    hello.set("worker", Json(cfg.name));
    if (!sendFrame(sock, hello))
        return WorkerExit::ConnectionLost;

    sim::FaultInjector chaos(cfg.chaos);
    TaskRunner runner;
    std::uint64_t done = 0;

    for (;;) {
        Json msg;
        const int rc = recvFrame(sock, msg, cfg.heartbeatMs);
        if (rc < 0)
            return WorkerExit::ConnectionLost;
        if (rc == 0) {
            // Nothing to do: prove liveness so the manager keeps
            // us out of quarantine.
            Json beat = Json::object();
            beat.set("type", Json("heartbeat"));
            beat.set("worker", Json(cfg.name));
            if (!sendFrame(sock, beat))
                return WorkerExit::ConnectionLost;
            continue;
        }
        if (msg.type() != Json::Type::Object || !msg.has("type"))
            continue;
        const std::string type = msg.get("type").asString();
        if (type == "shutdown")
            return WorkerExit::Shutdown;
        if (type != "task")
            continue;

        TaskSpec task;
        if (!TaskSpec::fromJson(msg, task))
            continue; // malformed lease; let it expire upstream

        if (chaos.fire(sim::FaultSite::WorkerKill)) {
            // Crash like a real process: no goodbye, just a dead
            // socket for the manager's disconnect path to find.
            sock.close();
            return WorkerExit::KillInjected;
        }

        const TaskResult result = runner.run(task);
        ++done;

        if (chaos.fire(sim::FaultSite::WorkerStall))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(cfg.stallMs));

        if (chaos.fire(sim::FaultSite::ResultDrop)) {
            // The lease expires upstream; the re-dispatched task
            // recomputes the identical bytes elsewhere.
        } else {
            Json frame = result.toJson();
            frame.set("type", Json("result"));
            frame.set("worker", Json(cfg.name));
            if (!sendFrame(sock, frame))
                return WorkerExit::ConnectionLost;
            if (chaos.fire(sim::FaultSite::DuplicateResult)
                && !sendFrame(sock, frame))
                return WorkerExit::ConnectionLost;
        }

        if (cfg.maxTasks != 0 && done >= cfg.maxTasks)
            return WorkerExit::TaskLimit;
    }
}

} // namespace quest::fleet
