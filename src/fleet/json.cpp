#include "json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hpp"

namespace quest::fleet {

bool
Json::asBool() const
{
    QUEST_ASSERT(_type == Type::Bool, "JSON value is not a bool");
    return _bool;
}

std::uint64_t
Json::asU64() const
{
    if (_type == Type::Uint)
        return _uint;
    QUEST_ASSERT(_type == Type::Int && _int >= 0,
                 "JSON value is not a non-negative integer");
    return std::uint64_t(_int);
}

std::int64_t
Json::asI64() const
{
    if (_type == Type::Int)
        return _int;
    QUEST_ASSERT(_type == Type::Uint
                     && _uint <= 0x7FFFFFFFFFFFFFFFull,
                 "JSON value does not fit a signed integer");
    return std::int64_t(_uint);
}

double
Json::asDouble() const
{
    switch (_type) {
      case Type::Double: return _double;
      case Type::Uint: return double(_uint);
      case Type::Int: return double(_int);
      default:
        sim::fatal("JSON value is not a number");
    }
}

const std::string &
Json::asString() const
{
    QUEST_ASSERT(_type == Type::String, "JSON value is not a string");
    return _string;
}

void
Json::push(Json v)
{
    QUEST_ASSERT(_type == Type::Array, "push on non-array JSON");
    _items.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    return _type == Type::Array ? _items.size() : _members.size();
}

const Json &
Json::at(std::size_t i) const
{
    QUEST_ASSERT(_type == Type::Array && i < _items.size(),
                 "JSON array index %zu out of range", i);
    return _items[i];
}

Json &
Json::set(const std::string &key, Json v)
{
    QUEST_ASSERT(_type == Type::Object, "set on non-object JSON");
    for (auto &[k, val] : _members) {
        if (k == key) {
            val = std::move(v);
            return *this;
        }
    }
    _members.emplace_back(key, std::move(v));
    return *this;
}

bool
Json::has(const std::string &key) const
{
    for (const auto &[k, v] : _members)
        if (k == key)
            return true;
    return false;
}

const Json &
Json::get(const std::string &key) const
{
    QUEST_ASSERT(_type == Type::Object, "get on non-object JSON");
    for (const auto &[k, v] : _members)
        if (k == key)
            return v;
    sim::fatal("JSON object has no key '%s'", key.c_str());
}

std::uint64_t
Json::getU64(const std::string &key, std::uint64_t fallback) const
{
    return has(key) ? get(key).asU64() : fallback;
}

double
Json::getDouble(const std::string &key, double fallback) const
{
    return has(key) ? get(key).asDouble() : fallback;
}

std::string
Json::getString(const std::string &key,
                const std::string &fallback) const
{
    return has(key) ? get(key).asString() : fallback;
}

namespace {

void
escapeString(const std::string &s, std::string &out)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

void
Json::dumpTo(std::string &out) const
{
    char buf[32];
    switch (_type) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += _bool ? "true" : "false";
        break;
      case Type::Uint:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(_uint));
        out += buf;
        break;
      case Type::Int:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(_int));
        out += buf;
        break;
      case Type::Double:
        // %.17g round-trips every finite IEEE-754 double exactly.
        std::snprintf(buf, sizeof(buf), "%.17g", _double);
        out += buf;
        break;
      case Type::String:
        escapeString(_string, out);
        break;
      case Type::Array:
        out += '[';
        for (std::size_t i = 0; i < _items.size(); ++i) {
            if (i)
                out += ',';
            _items[i].dumpTo(out);
        }
        out += ']';
        break;
      case Type::Object:
        out += '{';
        for (std::size_t i = 0; i < _members.size(); ++i) {
            if (i)
                out += ',';
            escapeString(_members[i].first, out);
            out += ':';
            _members[i].second.dumpTo(out);
        }
        out += '}';
        break;
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

namespace {

/** Recursive-descent parser over a bounded depth. */
class Parser
{
  public:
    Parser(const std::string &text) : _s(text) {}

    bool
    parseDocument(Json &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        return _pos == _s.size();
    }

  private:
    static constexpr int maxDepth = 32;

    void
    skipWs()
    {
        while (_pos < _s.size()
               && (_s[_pos] == ' ' || _s[_pos] == '\t'
                   || _s[_pos] == '\n' || _s[_pos] == '\r'))
            ++_pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (_s.compare(_pos, n, word) != 0)
            return false;
        _pos += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (_pos >= _s.size() || _s[_pos] != '"')
            return false;
        ++_pos;
        out.clear();
        while (_pos < _s.size()) {
            const char c = _s[_pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _s.size())
                return false;
            const char esc = _s[_pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (_pos + 4 > _s.size())
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = _s[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return false;
                }
                // The protocol only ships ASCII control escapes.
                if (code > 0x7F)
                    return false;
                out += char(code);
                break;
              }
              default:
                return false;
            }
        }
        return false;
    }

    bool
    parseNumber(Json &out)
    {
        const std::size_t start = _pos;
        bool is_double = false;
        if (_pos < _s.size() && _s[_pos] == '-')
            ++_pos;
        while (_pos < _s.size()) {
            const char c = _s[_pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++_pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+'
                       || c == '-') {
                is_double = true;
                ++_pos;
            } else {
                break;
            }
        }
        if (_pos == start)
            return false;
        const std::string tok = _s.substr(start, _pos - start);
        errno = 0;
        char *end = nullptr;
        if (is_double) {
            const double d = std::strtod(tok.c_str(), &end);
            if (errno != 0 || end == nullptr || *end != '\0')
                return false;
            out = Json(d);
        } else if (tok[0] == '-') {
            const long long i = std::strtoll(tok.c_str(), &end, 10);
            if (errno != 0 || end == nullptr || *end != '\0')
                return false;
            out = Json(std::int64_t(i));
        } else {
            const unsigned long long u =
                std::strtoull(tok.c_str(), &end, 10);
            if (errno != 0 || end == nullptr || *end != '\0')
                return false;
            out = Json(std::uint64_t(u));
        }
        return true;
    }

    bool
    parseValue(Json &out, int depth)
    {
        if (depth > maxDepth || _pos >= _s.size())
            return false;
        const char c = _s[_pos];
        if (c == 'n') {
            out = Json();
            return literal("null");
        }
        if (c == 't') {
            out = Json(true);
            return literal("true");
        }
        if (c == 'f') {
            out = Json(false);
            return literal("false");
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (c == '[') {
            ++_pos;
            out = Json::array();
            skipWs();
            if (_pos < _s.size() && _s[_pos] == ']') {
                ++_pos;
                return true;
            }
            for (;;) {
                Json item;
                skipWs();
                if (!parseValue(item, depth + 1))
                    return false;
                out.push(std::move(item));
                skipWs();
                if (_pos >= _s.size())
                    return false;
                if (_s[_pos] == ',') {
                    ++_pos;
                    continue;
                }
                if (_s[_pos] == ']') {
                    ++_pos;
                    return true;
                }
                return false;
            }
        }
        if (c == '{') {
            ++_pos;
            out = Json::object();
            skipWs();
            if (_pos < _s.size() && _s[_pos] == '}') {
                ++_pos;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (_pos >= _s.size() || _s[_pos] != ':')
                    return false;
                ++_pos;
                skipWs();
                Json value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.set(key, std::move(value));
                skipWs();
                if (_pos >= _s.size())
                    return false;
                if (_s[_pos] == ',') {
                    ++_pos;
                    continue;
                }
                if (_s[_pos] == '}') {
                    ++_pos;
                    return true;
                }
                return false;
            }
        }
        return parseNumber(out);
    }

    const std::string &_s;
    std::size_t _pos = 0;
};

} // namespace

bool
Json::parse(const std::string &text, Json &out)
{
    return Parser(text).parseDocument(out);
}

} // namespace quest::fleet
