#include "sweep.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "decode/detection.hpp"
#include "decode/pipeline.hpp"
#include "qecc/extractor.hpp"
#include "qecc/lattice.hpp"
#include "qecc/schedule.hpp"
#include "quantum/error_model.hpp"
#include "quantum/pauli_frame.hpp"
#include "sim/logging.hpp"
#include "sim/random.hpp"

namespace quest::fleet {

namespace {

/** Bit-exact double transport: the wire carries the raw bits. */
std::uint64_t
doubleBits(double d)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

double
bitsDouble(std::uint64_t u)
{
    double d = 0.0;
    std::memcpy(&d, &u, sizeof(d));
    return d;
}

bool
protocolFromName(const std::string &name, qecc::Protocol &out)
{
    for (const qecc::Protocol p : qecc::allProtocols) {
        if (qecc::protocolName(p) == name) {
            out = p;
            return true;
        }
    }
    return false;
}

constexpr std::uint64_t fnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t fnvPrime = 0x100000001B3ull;

/** Order-dependent FNV fold step (trial order, then task order). */
std::uint64_t
fnvFold(std::uint64_t acc, std::uint64_t value)
{
    acc ^= value;
    return acc * fnvPrime;
}

} // namespace

bool
SweepSpec::valid() const
{
    if (protocols.empty() || distances.empty() || errorRates.empty()
        || trialsPerPoint == 0 || grain == 0)
        return false;
    for (const std::size_t d : distances)
        if (d < 3 || d > 63 || d % 2 == 0)
            return false;
    for (const double p : errorRates)
        if (!(p >= 0.0) || !(p <= 1.0))
            return false;
    return true;
}

Json
SweepSpec::toJson() const
{
    Json j = Json::object();
    Json prot = Json::array();
    for (const qecc::Protocol p : protocols)
        prot.push(Json(qecc::protocolName(p)));
    Json dist = Json::array();
    for (const std::size_t d : distances)
        dist.push(Json(std::uint64_t(d)));
    Json rates = Json::array();
    for (const double p : errorRates)
        rates.push(Json(doubleBits(p)));
    j.set("protocols", std::move(prot));
    j.set("distances", std::move(dist));
    j.set("rate_bits", std::move(rates));
    j.set("trials", Json(trialsPerPoint));
    j.set("grain", Json(grain));
    j.set("seed", Json(seed));
    return j;
}

bool
SweepSpec::fromJson(const Json &j, SweepSpec &out)
{
    if (j.type() != Json::Type::Object || !j.has("protocols")
        || !j.has("distances") || !j.has("rate_bits"))
        return false;
    out = SweepSpec{};
    out.protocols.clear();
    out.distances.clear();
    out.errorRates.clear();

    const Json &prot = j.get("protocols");
    for (std::size_t i = 0; i < prot.size(); ++i) {
        qecc::Protocol p;
        if (!protocolFromName(prot.at(i).asString(), p))
            return false;
        out.protocols.push_back(p);
    }
    const Json &dist = j.get("distances");
    for (std::size_t i = 0; i < dist.size(); ++i) {
        const std::uint64_t d = dist.at(i).asU64();
        if (d < 3 || d > 63 || d % 2 == 0)
            return false;
        out.distances.push_back(std::size_t(d));
    }
    const Json &rates = j.get("rate_bits");
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const double p = bitsDouble(rates.at(i).asU64());
        if (!(p >= 0.0) || !(p <= 1.0))
            return false;
        out.errorRates.push_back(p);
    }
    if (out.protocols.empty() || out.distances.empty()
        || out.errorRates.empty())
        return false;
    out.trialsPerPoint = j.getU64("trials", 256);
    out.grain = j.getU64("grain", 64);
    out.seed = j.getU64("seed", 1);
    return out.valid();
}

std::vector<SweepPointSpec>
sweepPoints(const SweepSpec &spec)
{
    std::vector<SweepPointSpec> points;
    points.reserve(spec.pointCount());
    std::uint32_t index = 0;
    for (const qecc::Protocol prot : spec.protocols) {
        for (const std::size_t d : spec.distances) {
            for (const double p : spec.errorRates) {
                SweepPointSpec pt;
                pt.index = index;
                pt.protocol = prot;
                pt.distance = d;
                pt.errorRate = p;
                pt.pointSeed = sim::Rng::deriveSeed(spec.seed, index);
                points.push_back(pt);
                ++index;
            }
        }
    }
    return points;
}

Json
TaskSpec::toJson() const
{
    Json j = Json::object();
    j.set("id", Json(id));
    j.set("pt", Json(std::uint64_t(point.index)));
    j.set("protocol", Json(qecc::protocolName(point.protocol)));
    j.set("d", Json(std::uint64_t(point.distance)));
    j.set("rate_bits", Json(doubleBits(point.errorRate)));
    j.set("point_seed", Json(point.pointSeed));
    j.set("begin", Json(trialBegin));
    j.set("end", Json(trialEnd));
    return j;
}

bool
TaskSpec::fromJson(const Json &j, TaskSpec &out)
{
    if (j.type() != Json::Type::Object || !j.has("id")
        || !j.has("protocol") || !j.has("d") || !j.has("rate_bits")
        || !j.has("point_seed") || !j.has("begin") || !j.has("end"))
        return false;
    out = TaskSpec{};
    out.id = j.get("id").asU64();
    out.point.index = std::uint32_t(j.getU64("pt", 0));
    if (!protocolFromName(j.get("protocol").asString(),
                          out.point.protocol))
        return false;
    const std::uint64_t d = j.get("d").asU64();
    if (d < 3 || d > 63 || d % 2 == 0)
        return false;
    out.point.distance = std::size_t(d);
    out.point.errorRate = bitsDouble(j.get("rate_bits").asU64());
    out.point.pointSeed = j.get("point_seed").asU64();
    out.trialBegin = j.get("begin").asU64();
    out.trialEnd = j.get("end").asU64();
    return out.trialEnd > out.trialBegin
        && out.trialEnd - out.trialBegin <= 1u << 20;
}

std::vector<TaskSpec>
shardSweep(const SweepSpec &spec)
{
    const std::vector<SweepPointSpec> points = sweepPoints(spec);
    const std::uint64_t grain = spec.grain == 0 ? 1 : spec.grain;
    std::vector<TaskSpec> tasks;
    tasks.reserve(points.size() * spec.tasksPerPoint());
    std::uint64_t id = 0;
    for (const SweepPointSpec &pt : points) {
        for (std::uint64_t begin = 0; begin < spec.trialsPerPoint;
             begin += grain) {
            TaskSpec t;
            t.id = id++;
            t.point = pt;
            t.trialBegin = begin;
            t.trialEnd =
                std::min(begin + grain, spec.trialsPerPoint);
            tasks.push_back(t);
        }
    }
    return tasks;
}

Json
TaskResult::toJson() const
{
    Json j = Json::object();
    j.set("task", Json(taskId));
    j.set("pt", Json(std::uint64_t(pointIndex)));
    j.set("trials", Json(trials));
    j.set("failures", Json(failures));
    j.set("weight", Json(weightSum));
    j.set("logw_bits", Json(doubleBits(logWeight)));
    j.set("witness", Json(witness));
    return j;
}

bool
TaskResult::fromJson(const Json &j, TaskResult &out)
{
    if (j.type() != Json::Type::Object || !j.has("task")
        || !j.has("trials") || !j.has("failures") || !j.has("weight")
        || !j.has("logw_bits") || !j.has("witness"))
        return false;
    out = TaskResult{};
    out.taskId = j.get("task").asU64();
    out.pointIndex = std::uint32_t(j.getU64("pt", 0));
    out.trials = j.get("trials").asU64();
    out.failures = j.get("failures").asU64();
    out.weightSum = j.get("weight").asU64();
    out.logWeight = bitsDouble(j.get("logw_bits").asU64());
    out.witness = j.get("witness").asU64();
    return out.failures <= out.trials;
}

/** Cached per-point machinery: lattice, schedule, decoder. */
struct TaskRunner::Experiment
{
    qecc::Lattice lattice;
    qecc::RoundSchedule schedule;
    qecc::SyndromeExtractor extractor;
    decode::DecoderPipeline pipeline;

    Experiment(qecc::Protocol protocol, std::size_t distance)
        : lattice(qecc::Lattice::forDistance(distance)),
          schedule(qecc::buildRoundSchedule(
              lattice, qecc::protocolSpec(protocol))),
          extractor(schedule), pipeline(lattice)
    {}
};

TaskRunner::TaskRunner() = default;
TaskRunner::~TaskRunner() = default;

TaskResult
TaskRunner::run(const TaskSpec &task)
{
    const auto key = std::make_pair(std::size_t(task.point.protocol),
                                    task.point.distance);
    auto it = _cache.find(key);
    if (it == _cache.end())
        it = _cache
                 .emplace(key, std::make_unique<Experiment>(
                                   task.point.protocol,
                                   task.point.distance))
                 .first;
    Experiment &exp = *it->second;

    TaskResult res;
    res.taskId = task.id;
    res.pointIndex = task.point.index;
    res.trials = task.trials();
    res.witness = fnvOffset;

    const double p = task.point.errorRate;
    const std::size_t d = task.point.distance;
    for (std::uint64_t t = task.trialBegin; t < task.trialEnd; ++t) {
        // The whole trial draws from one substream keyed by the
        // absolute trial index — identical on every executor.
        sim::Rng rng =
            sim::Rng::substream(task.point.pointSeed, t);
        quantum::PauliFrame frame(exp.lattice.numQubits());
        quantum::ErrorChannel channel(
            quantum::ErrorRates{p, 0, 0, 0, p}, rng);
        auto history = exp.extractor.runRounds(frame, &channel, d);
        history.push_back(exp.extractor.runRound(frame, nullptr));
        const auto events =
            decode::extractDetectionEvents(history, exp.extractor);
        const decode::Correction corr = exp.pipeline.decode(events);
        decode::applyCorrection(frame, corr);

        bool failed = exp.extractor.runRound(frame, nullptr).any();
        if (!failed) {
            std::size_t x = 0, z = 0;
            for (const qecc::Coord c : exp.lattice.logicalZSupport())
                x += frame.xError(exp.lattice.index(c)) ? 1 : 0;
            for (const qecc::Coord c : exp.lattice.logicalXSupport())
                z += frame.zError(exp.lattice.index(c)) ? 1 : 0;
            failed = (x % 2) || (z % 2);
        }

        const std::uint64_t w = corr.weight();
        res.failures += failed ? 1 : 0;
        res.weightSum += w;
        res.logWeight += std::log1p(double(w));
        res.witness = fnvFold(res.witness,
                              (w << 1) | (failed ? 1u : 0u));
    }
    return res;
}

SweepMerger::SweepMerger(const SweepSpec &spec)
    : _spec(spec), _points(sweepPoints(spec)),
      _tasks(shardSweep(spec)), _slots(_tasks.size()),
      _prefixDone(_points.size(), 0)
{}

SweepMerger::Accept
SweepMerger::accept(const TaskResult &result)
{
    if (result.taskId >= _tasks.size())
        return Accept::Invalid;
    const TaskSpec &task = _tasks[result.taskId];
    if (result.pointIndex != task.point.index
        || result.trials != task.trials())
        return Accept::Invalid;
    if (_slots[result.taskId].has_value())
        return Accept::Duplicate;
    _slots[result.taskId] = result;
    ++_accepted;

    // Advance the point's contiguous fold prefix. Tasks of a point
    // are consecutive in shard order, so prefix progress is just a
    // scan from the last frontier.
    const std::uint64_t per = _spec.tasksPerPoint();
    const std::size_t pt = result.pointIndex;
    std::size_t &done = _prefixDone[pt];
    const std::uint64_t base = std::uint64_t(pt) * per;
    while (done < per && _slots[base + done].has_value())
        ++done;
    return Accept::Accepted;
}

std::size_t
SweepMerger::mergeLag() const
{
    std::size_t prefix = 0;
    for (const std::size_t d : _prefixDone)
        prefix += d;
    return _accepted - prefix;
}

sim::Table
SweepMerger::table() const
{
    QUEST_ASSERT(complete(),
                 "sweep table requested before all %zu tasks merged",
                 _slots.size());
    sim::Table table("Fleet sweep");
    table.header({"protocol", "d", "p", "trials", "failures", "ler",
                  "avg_weight", "logw_bits", "witness"});

    const std::uint64_t per = _spec.tasksPerPoint();
    char buf[64];
    for (const SweepPointSpec &pt : _points) {
        // Fixed association: fold the point's partials in task
        // order, exactly as a single-box loop would have.
        std::uint64_t trials = 0, failures = 0, weight = 0;
        double logw = 0.0;
        std::uint64_t witness = fnvOffset;
        const std::uint64_t base = std::uint64_t(pt.index) * per;
        for (std::uint64_t k = 0; k < per; ++k) {
            const TaskResult &r = *_slots[base + k];
            trials += r.trials;
            failures += r.failures;
            weight += r.weightSum;
            logw += r.logWeight;
            witness = fnvFold(witness, r.witness);
        }

        std::vector<std::string> row;
        row.push_back(qecc::protocolName(pt.protocol));
        std::snprintf(buf, sizeof(buf), "%zu", pt.distance);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%g", pt.errorRate);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(trials));
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(failures));
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.6e",
                      trials ? double(failures) / double(trials)
                             : 0.0);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.6f",
                      trials ? double(weight) / double(trials)
                             : 0.0);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(
                          doubleBits(logw)));
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(witness));
        row.push_back(buf);
        table.row(std::move(row));
    }
    std::snprintf(buf, sizeof(buf), "seed=%llu grain=%llu",
                  static_cast<unsigned long long>(_spec.seed),
                  static_cast<unsigned long long>(_spec.grain));
    table.caption(buf);
    return table;
}

std::string
SweepMerger::csv() const
{
    std::ostringstream os;
    table().printCsv(os);
    return os.str();
}

sim::Table
runSweepLocal(const SweepSpec &spec)
{
    TaskRunner runner;
    SweepMerger merger(spec);
    for (const TaskSpec &task : shardSweep(spec))
        merger.accept(runner.run(task));
    return merger.table();
}

} // namespace quest::fleet
