#include "manager.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <poll.h>
#include <sstream>

#include "sim/logging.hpp"

namespace quest::fleet {

namespace {

using metrics = sim::metrics::Registry;
using sim::metrics::Stability;

} // namespace

/** One TCP peer: a worker, a submitting client, or not yet known. */
struct Manager::Conn
{
    enum class Role
    {
        Unknown, ///< connected, no frame yet
        Worker,
        Client,
    };

    Socket sock;
    FrameReader reader;
    Role role = Role::Unknown;
    std::string name;
    std::int64_t lastSeenMs = 0;
    bool quarantined = false;
    bool dead = false; ///< swept at the end of the loop iteration
    /** Task ids currently leased to this worker (0 or 1 normally). */
    std::vector<std::uint64_t> inFlight;
};

/** Scheduling state of one task (results live in the merger). */
struct Manager::TaskState
{
    enum class Phase
    {
        Pending,
        Leased,
        Done,
    };

    Phase phase = Phase::Pending;
    int attempts = 0;             ///< dispatches so far
    std::int64_t notBeforeMs = 0; ///< backoff gate while Pending
    std::int64_t deadlineMs = 0;  ///< lease expiry while Leased
    std::int64_t dispatchedMs = 0;
    int leaseMs = 0;    ///< current lease length (grows per attempt)
    int leases = 0;     ///< concurrent leases (straggler re-issue)
    bool reissued = false; ///< straggler re-issue already queued
};

Manager::Manager(const FleetConfig &cfg)
    : _cfg(cfg),
      _mTasksTotal(metrics::global().counter(
          "fleet.tasks_total", "tasks sharded from the sweep spec")),
      _mTasksCompleted(metrics::global().counter(
          "fleet.tasks_completed", "tasks merged (first result)")),
      _mPoints(metrics::global().counter(
          "fleet.points", "sweep grid points")),
      _mRedispatches(metrics::global().counter(
          "fleet.redispatches",
          "tasks re-queued after lease expiry or worker loss",
          Stability::Wallclock)),
      _mLeaseExpiries(metrics::global().counter(
          "fleet.lease_expiries", "leases that timed out",
          Stability::Wallclock)),
      _mStragglers(metrics::global().counter(
          "fleet.straggler_redispatches",
          "second leases issued past the p99 latency gate",
          Stability::Wallclock)),
      _mDuplicates(metrics::global().counter(
          "fleet.duplicates_dropped",
          "results discarded because the task was already merged",
          Stability::Wallclock)),
      _mDisconnects(metrics::global().counter(
          "fleet.worker_disconnects", "worker connections lost",
          Stability::Wallclock)),
      _mQuarantines(metrics::global().counter(
          "fleet.quarantines", "idle workers that went silent",
          Stability::Wallclock)),
      _mReadmissions(metrics::global().counter(
          "fleet.readmissions", "quarantined workers heard again",
          Stability::Wallclock)),
      _mLocalTasks(metrics::global().counter(
          "fleet.local_tasks",
          "tasks executed in-process (fallback or budget)",
          Stability::Wallclock)),
      _mWorkersPeak(metrics::global().gauge(
          "fleet.workers_peak", "max concurrently usable workers",
          Stability::Wallclock)),
      _mMergeLagPeak(metrics::global().gauge(
          "fleet.merge_lag_peak",
          "max accepted-but-unfolded results",
          Stability::Wallclock))
{
    _jitter.seed(
        sim::Rng::deriveSeed(_cfg.schedulerSeed, 0xF1EE7ull));
    _listener = listenTcp(_cfg.port, _port);
    if (!_listener.valid())
        sim::fatal("fleet: cannot listen on 127.0.0.1:%u",
                   unsigned(_cfg.port));
    setNonBlocking(_listener);
}

Manager::~Manager() = default;

std::int64_t
Manager::nowMs() const
{
    // Scheduling clock only: lease ages, backoff gates, heartbeat
    // windows. Results never depend on it.
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

int
Manager::backoffMs(int attempt)
{
    const int shift = std::min(attempt > 0 ? attempt - 1 : 0, 16);
    const double base =
        double(_cfg.backoffBaseMs) * double(1u << shift);
    const double j =
        std::clamp(_cfg.backoffJitter, 0.0, 1.0);
    // Deterministic jitter: seeded stream, so identically-seeded
    // managers facing the same failure pattern back off alike.
    return int(base * (1.0 - j + j * _jitter.uniform()));
}

std::size_t
Manager::usableWorkers() const
{
    std::size_t n = 0;
    for (const Conn &c : _conns)
        if (!c.dead && c.role == Conn::Role::Worker
            && !c.quarantined)
            ++n;
    return n;
}

void
Manager::acceptPending()
{
    for (;;) {
        Socket sock = acceptClient(_listener);
        if (!sock.valid())
            return;
        setNonBlocking(sock);
        Conn conn;
        conn.sock = std::move(sock);
        conn.lastSeenMs = nowMs();
        _conns.push_back(std::move(conn));
    }
}

void
Manager::requeueTask(std::uint64_t id, bool throughBackoff)
{
    TaskState &st = _states[std::size_t(id)];
    if (st.phase == TaskState::Phase::Done)
        return;
    if (st.leases > 1) {
        // A second lease is still live (straggler re-issue); let it
        // race, don't triple-dispatch.
        --st.leases;
        return;
    }
    st.leases = 0;
    st.phase = TaskState::Phase::Pending;
    st.reissued = false;
    st.notBeforeMs =
        throughBackoff ? nowMs() + backoffMs(st.attempts) : nowMs();
    ++_mRedispatches;
}

void
Manager::dropConnection(std::size_t index)
{
    Conn &conn = _conns[index];
    if (conn.dead)
        return;
    conn.dead = true;
    if (conn.role == Conn::Role::Worker) {
        ++_mDisconnects;
        // Fail fast: a dead worker's leases re-queue immediately,
        // no need to wait out the lease timer.
        for (const std::uint64_t id : conn.inFlight)
            requeueTask(id, /*throughBackoff=*/false);
        conn.inFlight.clear();
    }
}

void
Manager::handleFrame(Conn &conn, const Json &msg)
{
    if (msg.type() != Json::Type::Object || !msg.has("type"))
        return;
    const std::string type = msg.get("type").asString();
    conn.lastSeenMs = nowMs();

    if (type == "hello") {
        conn.role = Conn::Role::Worker;
        conn.name = msg.getString("worker", "worker");
        _lastWorkerMs = conn.lastSeenMs;
        _mWorkersPeak.set(std::max(_mWorkersPeak.value(),
                                   double(usableWorkers())));
        return;
    }
    if (type == "heartbeat") {
        if (conn.quarantined) {
            conn.quarantined = false;
            ++_mReadmissions;
        }
        if (conn.role == Conn::Role::Worker)
            _lastWorkerMs = conn.lastSeenMs;
        return;
    }
    if (type == "result") {
        if (conn.quarantined) {
            conn.quarantined = false;
            ++_mReadmissions;
        }
        _lastWorkerMs = conn.lastSeenMs;
        TaskResult result;
        if (!TaskResult::fromJson(msg, result) || _merger == nullptr)
            return;
        const std::uint64_t id = result.taskId;
        auto &fl = conn.inFlight;
        fl.erase(std::remove(fl.begin(), fl.end(), id), fl.end());

        const SweepMerger::Accept verdict = _merger->accept(result);
        if (verdict == SweepMerger::Accept::Duplicate) {
            ++_mDuplicates;
            return;
        }
        if (verdict == SweepMerger::Accept::Invalid)
            return;
        TaskState &st = _states[std::size_t(id)];
        st.phase = TaskState::Phase::Done;
        st.leases = 0;
        _latenciesMs.push_back(double(nowMs() - st.dispatchedMs));
        ++_mTasksCompleted;
        _mMergeLagPeak.set(std::max(_mMergeLagPeak.value(),
                                    double(_merger->mergeLag())));
        return;
    }
    if (type == "submit") {
        conn.role = Conn::Role::Client;
        return; // serveOnce() inspects the frame itself
    }
}

void
Manager::pumpConnections()
{
    for (std::size_t i = 0; i < _conns.size(); ++i) {
        Conn &conn = _conns[i];
        if (conn.dead)
            continue;
        const bool alive = conn.reader.pump(conn.sock);
        Json msg;
        while (conn.reader.next(msg))
            handleFrame(conn, msg);
        if (!alive || conn.reader.poisoned())
            dropConnection(i);
    }
}

void
Manager::expireLeases()
{
    const std::int64_t now = nowMs();
    for (std::uint64_t id = 0; id < _states.size(); ++id) {
        TaskState &st = _states[std::size_t(id)];
        if (st.phase != TaskState::Phase::Leased
            || now <= st.deadlineMs)
            continue;
        ++_mLeaseExpiries;
        // Forget who held it; their eventual result (if any) is
        // still welcome and merges first-wins.
        for (Conn &conn : _conns) {
            auto &fl = conn.inFlight;
            fl.erase(std::remove(fl.begin(), fl.end(), id),
                     fl.end());
        }
        if (st.attempts >= _cfg.redispatchBudget) {
            // The fleet had its chances; stop risking the sweep's
            // latency on it and compute the task here.
            runTaskLocally(id);
            continue;
        }
        st.leases = 1; // collapse straggler double-leases
        requeueTask(id, /*throughBackoff=*/true);
    }
}

void
Manager::checkHeartbeats()
{
    const std::int64_t now = nowMs();
    const std::int64_t window = std::int64_t(_cfg.heartbeatMs)
        * std::int64_t(_cfg.quarantineMisses);
    for (Conn &conn : _conns) {
        if (conn.dead || conn.role != Conn::Role::Worker
            || conn.quarantined || !conn.inFlight.empty())
            continue; // busy workers answer to the lease instead
        if (now - conn.lastSeenMs > window) {
            conn.quarantined = true;
            ++_mQuarantines;
        }
    }
}

double
Manager::latencyP99() const
{
    if (_latenciesMs.empty())
        return 0.0;
    std::vector<double> sorted = _latenciesMs;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx =
        std::min(sorted.size() - 1,
                 std::size_t(double(sorted.size()) * 0.99));
    return sorted[idx];
}

void
Manager::reissueStragglers()
{
    const std::size_t done = std::size_t(_mTasksCompleted.value());
    const std::size_t gate =
        std::max<std::size_t>(8, _states.size() / 4);
    if (done < gate)
        return; // not enough samples to call anything a straggler
    const double p99 = latencyP99();
    if (p99 <= 0.0)
        return;
    const std::int64_t now = nowMs();
    const double limit = p99 * _cfg.stragglerFactor;
    for (std::uint64_t id = 0; id < _states.size(); ++id) {
        TaskState &st = _states[std::size_t(id)];
        if (st.phase != TaskState::Phase::Leased || st.reissued
            || st.leases != 1)
            continue;
        if (double(now - st.dispatchedMs) > limit) {
            st.reissued = true;
            _extraQueue.push_back(id);
            ++_mStragglers;
        }
    }
}

void
Manager::dispatchReady()
{
    const std::int64_t now = nowMs();
    for (Conn &conn : _conns) {
        if (conn.dead || conn.role != Conn::Role::Worker
            || conn.quarantined || !conn.inFlight.empty())
            continue;

        // Straggler re-issues first (they are the oldest work),
        // then the lowest-id ready pending task.
        std::uint64_t id = 0;
        bool found = false, extra = false;
        while (!_extraQueue.empty()) {
            const std::uint64_t cand = _extraQueue.front();
            if (_states[std::size_t(cand)].phase
                == TaskState::Phase::Leased) {
                id = cand;
                found = extra = true;
                break;
            }
            _extraQueue.erase(_extraQueue.begin()); // stale
        }
        if (!found) {
            for (std::uint64_t cand = 0; cand < _states.size();
                 ++cand) {
                TaskState &st = _states[std::size_t(cand)];
                if (st.phase == TaskState::Phase::Pending
                    && now >= st.notBeforeMs) {
                    id = cand;
                    found = true;
                    break;
                }
            }
        }
        if (!found)
            return; // nothing ready for anyone

        TaskState &st = _states[std::size_t(id)];
        Json frame = _tasks[std::size_t(id)].toJson();
        frame.set("type", Json("task"));
        if (!sendFrame(conn.sock, frame)) {
            dropConnection(std::size_t(&conn - _conns.data()));
            continue;
        }
        if (extra) {
            _extraQueue.erase(_extraQueue.begin());
            ++st.leases;
        } else {
            st.phase = TaskState::Phase::Leased;
            st.leases = 1;
            ++st.attempts;
            st.dispatchedMs = now;
            st.leaseMs = int(
                double(_cfg.leaseMs)
                * std::pow(std::max(1.0, _cfg.leaseGrowth),
                           double(st.attempts - 1)));
            st.deadlineMs = now + st.leaseMs;
        }
        conn.inFlight.push_back(id);
    }
}

void
Manager::runTaskLocally(std::uint64_t id)
{
    TaskState &st = _states[std::size_t(id)];
    if (st.phase == TaskState::Phase::Done)
        return;
    const TaskResult result =
        _localRunner.run(_tasks[std::size_t(id)]);
    st.phase = TaskState::Phase::Done;
    st.leases = 0;
    ++_mLocalTasks;
    if (_merger->accept(result) == SweepMerger::Accept::Accepted)
        ++_mTasksCompleted;
    else
        ++_mDuplicates;
}

void
Manager::localFallback()
{
    if (usableWorkers() > 0)
        return;
    const std::int64_t now = nowMs();
    if (now - _lastWorkerMs < _cfg.localFallbackMs)
        return;
    // One task per loop iteration keeps the manager responsive: a
    // worker connecting mid-drain still gets the rest of the queue.
    for (std::uint64_t id = 0; id < _states.size(); ++id) {
        TaskState &st = _states[std::size_t(id)];
        if (st.phase == TaskState::Phase::Pending) {
            runTaskLocally(id);
            return;
        }
    }
    // Only leased tasks left: nobody usable will deliver them, so
    // take the oldest one back rather than waiting out its lease.
    for (std::uint64_t id = 0; id < _states.size(); ++id) {
        if (_states[std::size_t(id)].phase
            == TaskState::Phase::Leased) {
            runTaskLocally(id);
            return;
        }
    }
}

void
Manager::finishJob()
{
    Json bye = Json::object();
    bye.set("type", Json("shutdown"));
    for (std::size_t i = 0; i < _conns.size(); ++i) {
        Conn &conn = _conns[i];
        if (!conn.dead && conn.role == Conn::Role::Worker)
            sendFrame(conn.sock, bye);
    }
}

void
Manager::driveJob()
{
    while (!_merger->complete()) {
        std::vector<pollfd> fds;
        fds.push_back({_listener.fd(), POLLIN, 0});
        for (const Conn &conn : _conns)
            if (!conn.dead)
                fds.push_back({conn.sock.fd(), POLLIN, 0});
        ::poll(fds.data(), nfds_t(fds.size()), 50);

        acceptPending();
        pumpConnections();
        expireLeases();
        checkHeartbeats();
        reissueStragglers();
        dispatchReady();
        localFallback();

        _conns.erase(
            std::remove_if(_conns.begin(), _conns.end(),
                           [](const Conn &c) {
                               return c.dead
                                   && c.role != Conn::Role::Client;
                           }),
            _conns.end());
    }
    finishJob();
}

sim::Table
Manager::runSweep(const SweepSpec &spec)
{
    SweepMerger merger(spec);
    _merger = &merger;
    _tasks = shardSweep(spec);
    _states.assign(_tasks.size(), TaskState{});
    _extraQueue.clear();
    _latenciesMs.clear();
    _lastWorkerMs = nowMs();
    _mTasksTotal += _tasks.size();
    _mPoints += spec.pointCount();

    driveJob();
    _merger = nullptr;
    return merger.table();
}

bool
Manager::serveOnce()
{
    const std::int64_t start = nowMs();
    // Phase 1: collect connections until a client submits a job.
    for (;;) {
        std::vector<pollfd> fds;
        fds.push_back({_listener.fd(), POLLIN, 0});
        for (const Conn &conn : _conns)
            if (!conn.dead)
                fds.push_back({conn.sock.fd(), POLLIN, 0});
        ::poll(fds.data(), nfds_t(fds.size()), 50);
        acceptPending();

        SweepSpec spec;
        std::size_t clientIdx = _conns.size();
        for (std::size_t i = 0; i < _conns.size(); ++i) {
            Conn &conn = _conns[i];
            if (conn.dead)
                continue;
            const bool alive = conn.reader.pump(conn.sock);
            Json msg;
            while (conn.reader.next(msg)) {
                if (msg.type() == Json::Type::Object
                    && msg.has("type")
                    && msg.get("type").asString() == "submit"
                    && msg.has("spec")
                    && SweepSpec::fromJson(msg.get("spec"), spec)
                    && clientIdx == _conns.size()) {
                    conn.role = Conn::Role::Client;
                    clientIdx = i;
                } else {
                    handleFrame(conn, msg);
                }
            }
            if (!alive || conn.reader.poisoned())
                dropConnection(i);
        }

        if (clientIdx != _conns.size()) {
            // runSweep's loop compacts _conns, so re-find the
            // client by role afterwards instead of by index.
            const sim::Table table = runSweep(spec);
            std::ostringstream os;
            table.printCsv(os);
            Json reply = Json::object();
            reply.set("type", Json("table"));
            reply.set("csv", Json(os.str()));
            reply.set("tasks",
                      Json(std::uint64_t(_tasks.size())));
            for (Conn &conn : _conns) {
                if (!conn.dead && conn.role == Conn::Role::Client) {
                    sendFrame(conn.sock, reply);
                    break;
                }
            }
            return true;
        }
        if (_cfg.submitTimeoutMs >= 0
            && nowMs() - start > _cfg.submitTimeoutMs)
            return false;
    }
}

} // namespace quest::fleet
