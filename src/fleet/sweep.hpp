/**
 * @file
 * Fleet sweep jobs: grid specs, trial-range task sharding, the
 * deterministic task executor and the order-independent merge.
 *
 * A sweep job is a protocol × distance × error-rate grid (the
 * fig14/fig15/fault-sweep shapes) of surface-code memory
 * experiments, `trialsPerPoint` Monte-Carlo trials per grid point.
 * The job is sharded into trial-range tasks of `grain` trials; task
 * (point k, trials [a, b)) is a *pure function* of the spec:
 * trial t draws only from `Rng::substream(deriveSeed(seed, k), t)`,
 * so any worker — or the manager's local fallback, or a re-dispatch
 * after a worker died — reproduces the exact bytes any other
 * executor would have produced.
 *
 * The merge is the PR-2 fixed-association reduction lifted across
 * process boundaries: partial results are slotted by task id and
 * folded in task order at finalization, so the merged table is
 * byte-identical regardless of worker count, arrival order,
 * duplicate deliveries (first result wins) or mid-sweep failures.
 * Every per-trial quantity that could expose association (the
 * floating-point log-weight sum, the FNV witness digest) is folded
 * left-to-right in trial order inside a task and in task order
 * across tasks — the same association for every execution plan.
 */

#ifndef QUEST_FLEET_SWEEP_HPP
#define QUEST_FLEET_SWEEP_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "json.hpp"
#include "qecc/protocol.hpp"
#include "sim/table.hpp"

namespace quest::fleet {

/** One sweep job: the grid, the budget and the replay seed. */
struct SweepSpec
{
    std::vector<qecc::Protocol> protocols{qecc::Protocol::Steane};
    std::vector<std::size_t> distances{3, 5};
    std::vector<double> errorRates{1e-3};
    std::uint64_t trialsPerPoint = 256;
    std::uint64_t grain = 64; ///< trials per task
    std::uint64_t seed = 1;

    /** Grid points in canonical (protocol, distance, rate) order. */
    std::size_t
    pointCount() const
    {
        return protocols.size() * distances.size()
            * errorRates.size();
    }

    /** Tasks per point under the configured grain. */
    std::uint64_t
    tasksPerPoint() const
    {
        const std::uint64_t g = grain == 0 ? 1 : grain;
        return (trialsPerPoint + g - 1) / g;
    }

    /**
     * Grid well-formedness: non-empty axes, odd distances in
     * [3, 63], error rates in [0, 1], positive trials and grain.
     * Every entry point (CLI flags, submitted JSON) must check this
     * before sharding — an even distance has no valid lattice.
     */
    bool valid() const;

    Json toJson() const;
    static bool fromJson(const Json &j, SweepSpec &out);
};

/** One grid point, with its derived substream family seed. */
struct SweepPointSpec
{
    std::uint32_t index = 0;
    qecc::Protocol protocol = qecc::Protocol::Steane;
    std::size_t distance = 3;
    double errorRate = 1e-3;
    std::uint64_t pointSeed = 0; ///< Rng::deriveSeed(spec.seed, index)
};

/** Expand the grid in canonical order. */
std::vector<SweepPointSpec> sweepPoints(const SweepSpec &spec);

/** One trial-range task; self-contained (carries its point spec). */
struct TaskSpec
{
    std::uint64_t id = 0; ///< global shard index (merge slot)
    SweepPointSpec point;
    std::uint64_t trialBegin = 0;
    std::uint64_t trialEnd = 0;

    std::uint64_t trials() const { return trialEnd - trialBegin; }

    Json toJson() const;
    static bool fromJson(const Json &j, TaskSpec &out);
};

/** Shard the job: point-major, contiguous trial ranges of `grain`. */
std::vector<TaskSpec> shardSweep(const SweepSpec &spec);

/** Partial result of one task (pure function of the TaskSpec). */
struct TaskResult
{
    std::uint64_t taskId = 0;
    std::uint32_t pointIndex = 0;
    std::uint64_t trials = 0;
    std::uint64_t failures = 0;
    std::uint64_t weightSum = 0; ///< total correction weight
    /** Σ log1p(weight) folded in trial order (association witness). */
    double logWeight = 0.0;
    /** FNV fold of per-trial outcomes, order-dependent. */
    std::uint64_t witness = 0;

    Json toJson() const;
    static bool fromJson(const Json &j, TaskResult &out);
};

/**
 * Deterministic task executor, shared by `quest worker`, the
 * manager's local fallback and the tests. Caches per-point
 * experiment state (lattice, schedule, decoder) across tasks.
 */
class TaskRunner
{
  public:
    TaskRunner();
    ~TaskRunner();

    /** Execute one task; bit-identical on every host/executor. */
    TaskResult run(const TaskSpec &task);

  private:
    struct Experiment;
    std::map<std::pair<std::size_t, std::size_t>,
             std::unique_ptr<Experiment>>
        _cache; ///< keyed by (protocol, distance)
};

/**
 * Incremental first-result-wins merge with fixed association.
 * Results may arrive in any order, more than once, or from
 * different executors; the finalized table depends only on the
 * spec.
 */
class SweepMerger
{
  public:
    enum class Accept
    {
        Accepted,  ///< first result for this task
        Duplicate, ///< already have this task (dropped)
        Invalid,   ///< unknown task id or shape mismatch
    };

    explicit SweepMerger(const SweepSpec &spec);

    Accept accept(const TaskResult &result);

    std::size_t tasksTotal() const { return _slots.size(); }
    std::size_t tasksDone() const { return _accepted; }
    bool complete() const { return _accepted == _slots.size(); }

    /**
     * Accepted results not yet absorbed into their point's
     * contiguous fold prefix — how far the incremental merge runs
     * behind arrival (the fleet.merge_lag gauge).
     */
    std::size_t mergeLag() const;

    /** The merged per-point table; requires complete(). */
    sim::Table table() const;

    /** The table in CSV form (the byte-identity artifact). */
    std::string csv() const;

  private:
    SweepSpec _spec;
    std::vector<SweepPointSpec> _points;
    std::vector<TaskSpec> _tasks;
    std::vector<std::optional<TaskResult>> _slots;
    std::vector<std::size_t> _prefixDone; ///< per point
    std::size_t _accepted = 0;
};

/** Run a whole sweep in-process (the no-fleet reference path). */
sim::Table runSweepLocal(const SweepSpec &spec);

} // namespace quest::fleet

#endif // QUEST_FLEET_SWEEP_HPP
