/**
 * @file
 * Minimal JSON value for the fleet wire protocol.
 *
 * The manager and workers exchange small framed JSON messages
 * (protocol.hpp). The repo writes JSON in several places but never
 * had to *parse* it; this is the smallest value type that closes the
 * loop: null/bool/unsigned/signed/double/string/array/object, strict
 * parsing, deterministic serialization (object keys keep insertion
 * order, doubles print with %.17g so they round-trip exactly).
 *
 * Determinism note: values whose exact bits matter across the wire
 * (seeds, witness digests, floating-point partial sums) travel as
 * unsigned 64-bit integers — the double partials are bit-cast by the
 * caller (sweep.cpp) — so the merge never depends on decimal
 * round-tripping at all.
 */

#ifndef QUEST_FLEET_JSON_HPP
#define QUEST_FLEET_JSON_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace quest::fleet {

/** A parsed JSON value (tree-owning, copyable). */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Uint,   ///< non-negative integer literal
        Int,    ///< negative integer literal
        Double, ///< literal with '.', 'e' or 'E'
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool b) : _type(Type::Bool), _bool(b) {}
    Json(std::uint64_t u) : _type(Type::Uint), _uint(u) {}
    Json(std::int64_t i) : _type(Type::Int), _int(i) {}
    Json(int i) : Json(std::int64_t(i)) {}
    Json(double d) : _type(Type::Double), _double(d) {}
    Json(std::string s) : _type(Type::String), _string(std::move(s))
    {}
    Json(const char *s) : Json(std::string(s)) {}

    static Json array() { Json j; j._type = Type::Array; return j; }
    static Json object() { Json j; j._type = Type::Object; return j; }

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isNumber() const
    {
        return _type == Type::Uint || _type == Type::Int
            || _type == Type::Double;
    }

    /** @name Typed accessors; fatal on type mismatch. */
    ///@{
    bool asBool() const;
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    double asDouble() const;
    const std::string &asString() const;
    ///@}

    /** @name Array access. */
    ///@{
    void push(Json v);
    std::size_t size() const;
    const Json &at(std::size_t i) const;
    ///@}

    /** @name Object access (insertion-ordered). */
    ///@{
    Json &set(const std::string &key, Json v);
    bool has(const std::string &key) const;
    /** Fatal when the key is absent. */
    const Json &get(const std::string &key) const;
    /** Convenience getters with defaults for optional keys. */
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;
    const std::vector<std::pair<std::string, Json>> &
    members() const
    {
        return _members;
    }
    ///@}

    /** Compact single-line serialization. */
    std::string dump() const;

    /**
     * Strict parse of one JSON document.
     * @return false (and leaves `out` unspecified) on malformed
     *         input — a fleet peer sending garbage must not take the
     *         manager down.
     */
    static bool parse(const std::string &text, Json &out);

  private:
    void dumpTo(std::string &out) const;

    Type _type = Type::Null;
    bool _bool = false;
    std::uint64_t _uint = 0;
    std::int64_t _int = 0;
    double _double = 0.0;
    std::string _string;
    std::vector<Json> _items;
    std::vector<std::pair<std::string, Json>> _members;
};

} // namespace quest::fleet

#endif // QUEST_FLEET_JSON_HPP
