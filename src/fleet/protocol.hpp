/**
 * @file
 * Fleet wire protocol: length-prefixed JSON frames over TCP.
 *
 * Every message is a 4-byte little-endian payload length followed by
 * one JSON object with a "type" member. The vocabulary is small and
 * Work-Queue-shaped (SNIPPETS.md §3):
 *
 *   worker → manager   hello      {type, worker}
 *                      result     {type, worker, task, ...partials}
 *                      heartbeat  {type, worker}
 *   client → manager   submit     {type, spec}
 *   manager → worker   task       {type, task, ...point spec}
 *                      idle       {type}    (connected, nothing ready)
 *                      shutdown   {type}    (job done, disconnect)
 *   manager → client   table      {type, csv, metrics}
 *
 * Task messages are self-contained (they carry the full sweep-point
 * spec, not a reference to earlier state), so a worker that joins
 * mid-job — or reconnects after the manager re-leased its task —
 * needs no session state. Frames are capped at 4 MiB; a peer
 * announcing more is treated as faulted and dropped, never trusted
 * with an allocation.
 *
 * The socket helpers are thin POSIX wrappers: the manager runs them
 * non-blocking under poll(2), workers use blocking calls with
 * timeouts. All sends use MSG_NOSIGNAL — a dying peer must surface
 * as an error code on the manager, not a SIGPIPE.
 */

#ifndef QUEST_FLEET_PROTOCOL_HPP
#define QUEST_FLEET_PROTOCOL_HPP

#include <cstdint>
#include <string>

#include "json.hpp"

namespace quest::fleet {

/** Largest accepted frame payload (bytes). */
inline constexpr std::uint32_t maxFramePayload = 4u << 20;

/** RAII socket file descriptor. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : _fd(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : _fd(other.release()) {}
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            _fd = other.release();
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return _fd; }
    bool valid() const { return _fd >= 0; }
    int release()
    {
        const int fd = _fd;
        _fd = -1;
        return fd;
    }
    void close();

  private:
    int _fd = -1;
};

/**
 * Bind and listen on 127.0.0.1:port (port 0 = ephemeral).
 * @param bound_port Receives the actual port.
 * @return listening socket, invalid on failure.
 */
Socket listenTcp(std::uint16_t port, std::uint16_t &bound_port);

/** Accept one pending client; invalid Socket when none/failed. */
Socket acceptClient(const Socket &listener);

/**
 * Connect to host:port, retrying until the deadline (the manager
 * may come up after the worker under CI orchestration).
 * @return connected socket, invalid after timeout_ms of refusals.
 */
Socket connectTcp(const std::string &host, std::uint16_t port,
                  int timeout_ms);

/** Switch a socket to non-blocking mode (manager side). */
bool setNonBlocking(const Socket &sock);

/**
 * Send one framed message, blocking until it is fully written.
 * @return false when the peer is gone (connection unusable).
 */
bool sendFrame(const Socket &sock, const Json &msg);

/**
 * Receive one framed message, blocking up to timeout_ms.
 * @return +1 message received, 0 timeout, -1 peer gone/garbage.
 */
int recvFrame(const Socket &sock, Json &out, int timeout_ms);

/**
 * Incremental frame decoder for non-blocking sockets: feed bytes as
 * they arrive, pop complete frames. One instance per connection.
 */
class FrameReader
{
  public:
    /**
     * Read whatever is available without blocking.
     * @return false when the peer closed or a protocol violation
     *         (oversized/garbled frame) poisoned the stream.
     */
    bool pump(const Socket &sock);

    /** Pop the next complete frame. @return false when none. */
    bool next(Json &out);

    /** True once the stream is unrecoverable (drop the peer). */
    bool poisoned() const { return _poisoned; }

  private:
    std::string _buffer;
    bool _poisoned = false;
};

} // namespace quest::fleet

#endif // QUEST_FLEET_PROTOCOL_HPP
