/**
 * @file
 * The fleet manager: `quest serve` — a single-threaded poll(2) loop
 * that farms sweep tasks to `quest worker` processes and survives
 * their failures without changing a byte of the merged output.
 *
 * Task lifecycle (DESIGN.md §13):
 *
 *     Pending ──dispatch──▶ Leased ──result──▶ Done
 *        ▲                    │
 *        └──expiry/disconnect─┘   (backoff, bounded re-dispatch)
 *
 * Robustness machinery, in the order it usually fires:
 *  - **Lease timeouts.** Every dispatched task carries a lease; a
 *    worker that neither returns the result nor dies within it is
 *    presumed stuck. Expired tasks go back to Pending behind an
 *    exponential backoff with deterministic jitter (seeded Rng, so
 *    two identically-seeded managers facing the same failures make
 *    the same scheduling decisions). The lease grows per attempt so
 *    slow-but-correct workers eventually fit inside it.
 *  - **Worker loss.** A closed or poisoned connection immediately
 *    re-queues everything leased to it — no need to wait out the
 *    lease.
 *  - **Re-dispatch budget.** After `redispatchBudget` failed
 *    attempts the manager stops trusting the fleet with the task
 *    and runs it in-process (the task executor is the same code,
 *    so the bytes are the same).
 *  - **Straggler re-issue.** Once enough tasks have completed to
 *    estimate a latency distribution, any lease older than
 *    `stragglerFactor × p99` gets a second concurrent lease;
 *    first result wins, the loser is dropped as a duplicate.
 *  - **Heartbeat quarantine.** Idle workers heartbeat; one that
 *    goes silent is quarantined (no new leases) and readmitted on
 *    its next sign of life. Busy workers are governed by their
 *    lease instead — a single-threaded worker deep in a d=13 task
 *    cannot heartbeat and must not be punished for it.
 *  - **Local fallback.** With no usable workers for
 *    `localFallbackMs`, the manager starts draining the queue
 *    itself, one task per loop iteration, so late workers can
 *    still join mid-sweep.
 *
 * Determinism: none of this machinery can affect results. Tasks are
 * pure functions of the spec; the merge is first-result-wins into
 * task-id slots folded in a fixed order. The `fleet.*` metrics that
 * witness the machinery (redispatches, lease expiries, quarantines)
 * are registered Wallclock — present in --metrics-out, excluded
 * from the byte-identity snapshot. Only `fleet.tasks_total` /
 * `fleet.tasks_completed` / `fleet.points` are Stable.
 */

#ifndef QUEST_FLEET_MANAGER_HPP
#define QUEST_FLEET_MANAGER_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "protocol.hpp"
#include "sim/metrics.hpp"
#include "sim/random.hpp"
#include "sim/table.hpp"
#include "sweep.hpp"

namespace quest::fleet {

/** Manager tuning; defaults suit localhost CI fleets. */
struct FleetConfig
{
    std::uint16_t port = 0; ///< 0 = ephemeral (see Manager::port())

    int leaseMs = 4000;        ///< initial task lease
    double leaseGrowth = 2.0;  ///< lease multiplier per re-dispatch
    int backoffBaseMs = 50;    ///< re-dispatch backoff, attempt 1
    double backoffJitter = 0.5; ///< jitter fraction of the backoff
    int redispatchBudget = 4;  ///< attempts before local execution

    double stragglerFactor = 4.0; ///< re-issue past p99 × this
    int heartbeatMs = 500;        ///< expected idle-worker cadence
    int quarantineMisses = 3;     ///< missed beats before quarantine

    int localFallbackMs = 200; ///< workerless grace before self-run

    /** Seed of the backoff-jitter stream (scheduling only). */
    std::uint64_t schedulerSeed = 0x51EEDull;

    /** serveOnce(): max wait for a submit; <0 waits forever. */
    int submitTimeoutMs = -1;
};

/** The sweep-farm manager (single-threaded, poll-driven). */
class Manager
{
  public:
    explicit Manager(const FleetConfig &cfg);
    ~Manager();

    Manager(const Manager &) = delete;
    Manager &operator=(const Manager &) = delete;

    /** The bound listen port (for --port-file handshakes). */
    std::uint16_t port() const { return _port; }

    /**
     * Farm one sweep across whatever workers connect, falling back
     * to in-process execution when the fleet cannot make progress.
     * Always returns the complete merged table (bit-identical to
     * runSweepLocal on the same spec).
     */
    sim::Table runSweep(const SweepSpec &spec);

    /**
     * Await one `submit` job on the same port the workers use, run
     * it, reply to the client with the merged CSV.
     * @return true when a job was served; false on submit timeout.
     */
    bool serveOnce();

  private:
    struct Conn;
    struct TaskState;

    std::int64_t nowMs() const;
    int backoffMs(int attempt);
    void acceptPending();
    void pumpConnections();
    void handleFrame(Conn &conn, const Json &msg);
    void dropConnection(std::size_t index);
    void requeueTask(std::uint64_t id, bool throughBackoff);
    void expireLeases();
    void checkHeartbeats();
    void reissueStragglers();
    void dispatchReady();
    void localFallback();
    void runTaskLocally(std::uint64_t id);
    void finishJob();
    double latencyP99() const;
    std::size_t usableWorkers() const;
    void driveJob();

    FleetConfig _cfg;
    Socket _listener;
    std::uint16_t _port = 0;
    sim::Rng _jitter; ///< scheduling decisions only, never results

    std::vector<Conn> _conns;
    std::vector<TaskState> _states;
    std::vector<TaskSpec> _tasks;
    std::vector<std::uint64_t> _extraQueue; ///< straggler re-issues
    SweepMerger *_merger = nullptr;
    TaskRunner _localRunner;
    std::vector<double> _latenciesMs; ///< completed-task latencies
    std::int64_t _lastWorkerMs = 0;   ///< last usable-worker sighting

    /** @name fleet.* metrics (see file header for stability). */
    ///@{
    sim::metrics::Counter &_mTasksTotal;
    sim::metrics::Counter &_mTasksCompleted;
    sim::metrics::Counter &_mPoints;
    sim::metrics::Counter &_mRedispatches;
    sim::metrics::Counter &_mLeaseExpiries;
    sim::metrics::Counter &_mStragglers;
    sim::metrics::Counter &_mDuplicates;
    sim::metrics::Counter &_mDisconnects;
    sim::metrics::Counter &_mQuarantines;
    sim::metrics::Counter &_mReadmissions;
    sim::metrics::Counter &_mLocalTasks;
    sim::metrics::Gauge &_mWorkersPeak;
    sim::metrics::Gauge &_mMergeLagPeak;
    ///@}
};

} // namespace quest::fleet

#endif // QUEST_FLEET_MANAGER_HPP
