/**
 * @file
 * Quantum workload models (paper Section 6.1).
 *
 * The paper drives its evaluation with seven workloads compiled by
 * ScaffCC and sized by the QuRE toolbox. Neither the traces nor the
 * toolbox outputs ship with the paper, so each workload is modelled
 * by the aggregate quantities the evaluation actually consumes:
 * logical qubit count, total logical gate count, T-gate fraction
 * (25-30% per Section 5.2) and exploitable logical ILP (2-3 per
 * Section 5.2). Values are calibrated to the published scale of the
 * ScaffCC benchmark suite and the quantum-chemistry applications the
 * paper cites; DESIGN.md records this substitution.
 */

#ifndef QUEST_WORKLOADS_WORKLOAD_HPP
#define QUEST_WORKLOADS_WORKLOAD_HPP

#include <string>
#include <vector>

namespace quest::workloads {

/** Aggregate description of one quantum application. */
struct Workload
{
    std::string name;
    double logicalQubits = 0;  ///< algorithm logical qubits
    double logicalGates = 0;   ///< total logical instructions
    double tFraction = 0.28;   ///< share of T gates in the stream
    double ilp = 2.5;          ///< logical instructions per time-step

    /** Serial logical depth: gates divided by exploitable ILP. */
    double depth() const { return logicalGates / ilp; }

    /** Total T gates. */
    double tGates() const { return logicalGates * tFraction; }
};

/** @name The paper's workload suite. */
///@{

/** Binary Welded Tree: quantum-walk pathfinding (n=300). */
Workload bwt();

/** Boolean Formula: quantum strategy for the game of hex. */
Workload booleanFormula();

/** Ground State Estimation of the Fe2S2 molecule. */
Workload gse();

/** Ground State Estimation of the FeMoCo active site. */
Workload femoco();

/** Quantum Linear System solver (Ax = b). */
Workload qls();

/** Shor's factoring algorithm for an n-bit modulus. */
Workload shor(std::size_t bits);

/** Triangle Finding Problem on an n-node dense graph. */
Workload tfp();

/** The full suite in Figure-6 order (SHOR instantiated at 512). */
std::vector<Workload> workloadSuite();
///@}

} // namespace quest::workloads

#endif // QUEST_WORKLOADS_WORKLOAD_HPP
