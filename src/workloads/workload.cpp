#include "workload.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace quest::workloads {

Workload
bwt()
{
    // ScaffCC BWT at n=300, s=1000: ~900 logical qubits, ~1e8 gates.
    return Workload{"BWT", 900, 1.0e8, 0.30, 2.5};
}

Workload
booleanFormula()
{
    // ScaffCC BF (n=2): small qubit count, modest gate count.
    return Workload{"BF", 60, 2.0e6, 0.25, 2.0};
}

Workload
gse()
{
    // Fe2S2 ground-state estimation: deep phase-estimation circuit.
    return Workload{"GSE", 1200, 1.0e12, 0.28, 2.5};
}

Workload
femoco()
{
    // FeMoCo active-site simulation (Hastings et al. scale).
    return Workload{"FeMoCo", 2000, 1.0e14, 0.30, 2.5};
}

Workload
qls()
{
    // Quantum Linear System at n=332.
    return Workload{"QLS", 500, 1.0e10, 0.27, 2.5};
}

Workload
shor(std::size_t bits)
{
    QUEST_ASSERT(bits >= 16, "modulus too small to be interesting");
    // 2n+3 logical qubits (Beauregard-style circuit) and ~40 n^3
    // gates for modular exponentiation.
    const double n = double(bits);
    return Workload{"SHOR-" + std::to_string(bits), 2.0 * n + 3.0,
                    40.0 * n * n * n, 0.25, 3.0};
}

Workload
tfp()
{
    // Triangle finding on a dense graph (n ~ 15 nodes at the
    // ScaffCC parameterization).
    return Workload{"TFP", 150, 2.0e7, 0.25, 2.0};
}

std::vector<Workload>
workloadSuite()
{
    return { bwt(), booleanFormula(), gse(), femoco(), qls(),
             shor(512), tfp() };
}

} // namespace quest::workloads
