#include "estimator.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace quest::workloads {

std::size_t
ResourceEstimator::solveDistance(const Workload &w,
                                 double logical_qubits) const
{
    // Rounds depend on d, and the distance choice depends on the
    // number of rounds: iterate to a fixpoint (monotone, so this
    // converges in a couple of steps).
    std::size_t d = 3;
    for (int iter = 0; iter < 8; ++iter) {
        const double rounds = w.depth() * double(d);
        // Half the failure budget goes to memory/logic errors, the
        // other half to distilled T states.
        const std::size_t next = qecc::chooseDistance(
            _cfg.physicalErrorRate, rounds, logical_qubits,
            _cfg.failureBudget / 2.0);
        if (next == d)
            return d;
        d = next;
    }
    return d;
}

ResourceEstimate
ResourceEstimator::estimate(const Workload &w) const
{
    QUEST_ASSERT(w.logicalQubits > 0 && w.logicalGates > 0,
                 "workload '%s' has no work", w.name.c_str());

    ResourceEstimate est;
    est.workload = w;
    est.config = _cfg;

    const auto &proto = qecc::protocolSpec(_cfg.protocol);
    const auto lat = tech::gateLatencies(_cfg.technology);

    // --- Distillation plant -------------------------------------
    const distill::TFactoryModel factory_model;
    const double t_rate = w.tFraction * w.ilp;
    est.tPlan = factory_model.plan(_cfg.physicalErrorRate, w.tGates(),
                                   t_rate, _cfg.failureBudget / 2.0);

    est.appLogicalQubits = w.logicalQubits;
    est.factoryLogicalQubits = double(est.tPlan.factories)
        * est.tPlan.logicalQubitsPerFactory;
    const double logical_qubits =
        est.appLogicalQubits + est.factoryLogicalQubits;

    // --- Code distance and physical expansion --------------------
    est.codeDistance = solveDistance(w, logical_qubits);
    const double per_logical = _cfg.qurePatch
        ? qecc::qureQubitsPerLogical(est.codeDistance)
        : qecc::fowlerQubitsPerLogical(est.codeDistance);
    est.physicalQubits = logical_qubits * per_logical;

    // --- Time ----------------------------------------------------
    // One logical time-step takes d QECC rounds (defect separation
    // must be maintained for d rounds per step).
    est.logicalDepth = w.depth();
    est.qeccRounds = est.logicalDepth * double(est.codeDistance);
    est.execTimeSeconds = est.qeccRounds
        * sim::ticksToSeconds(proto.roundDuration(lat));

    // --- Instruction counts --------------------------------------
    est.qeccInstructions = est.physicalQubits
        * double(proto.uopsPerQubit) * est.qeccRounds;
    est.appInstructions = w.logicalGates;
    est.distillInstructions = est.tPlan.plantInstrPerStep
        * est.logicalDepth;
    // One synchronization token per logical time-step.
    est.syncTokens = est.logicalDepth;
    // Cache fills: each factory's round body fetched once.
    est.cacheFillInstructions = double(est.tPlan.factories)
        * double(factory_model.spec().instructionsPerRound)
        * double(est.tPlan.levels);

    // --- Bandwidths ----------------------------------------------
    // Baseline: the software-managed stream delivers every QECC uop
    // as a byte-sized instruction over the run; per qubit this is
    // uopsPerQubit / T_ecc ~= the qubit operating rate, i.e. the
    // ~100 MB/s per qubit of Section 3.3. Expressing it through the
    // instruction count makes the savings ratio independent of the
    // technology's absolute gate latencies, matching the paper's
    // observation that configuration moves the savings by less than
    // a coefficient of variation of 0.0002%.
    est.baselineBandwidth = est.qeccInstructions
        * double(tech::physicalInstrBytes) / est.execTimeSeconds;

    const double bytes_per_logical = double(tech::logicalInstrBytes);
    est.mceBandwidth = (est.appInstructions + est.distillInstructions
                        + est.syncTokens)
        * bytes_per_logical / est.execTimeSeconds;
    est.cachedBandwidth = (est.appInstructions + est.syncTokens
                           + est.cacheFillInstructions)
        * bytes_per_logical / est.execTimeSeconds;

    return est;
}

} // namespace quest::workloads
