/**
 * @file
 * QuRE-style quantum resource and bandwidth estimator (Section 6.2).
 *
 * Reimplements the analytical pipeline the paper ran through the
 * QuRE toolbox: pick a code distance from the physical error rate
 * and the application's failure budget, expand logical qubits into
 * physical qubits (QuRE's 7d x 3d patch by default), size the
 * magic-state distillation plant, derive the execution time from
 * the logical depth and the QECC round latency, and convert the
 * resulting instruction streams into the three bandwidth figures
 * the evaluation compares:
 *
 *  - baseline: software-managed QECC; every physical qubit consumes
 *    byte-sized instructions at its operating rate (Section 3.3).
 *  - QuEST (MCE): QECC handled by microcode; the global bus carries
 *    the application's logical instructions, the distillation
 *    plant's logical instructions and sync tokens (Section 7).
 *  - QuEST + logical cache: distillation streams are cached at the
 *    MCEs; only application instructions, sync tokens and one-time
 *    cache fills remain (Section 5.3).
 */

#ifndef QUEST_WORKLOADS_ESTIMATOR_HPP
#define QUEST_WORKLOADS_ESTIMATOR_HPP

#include "distill/tfactory.hpp"
#include "qecc/distance.hpp"
#include "qecc/protocol.hpp"
#include "tech/parameters.hpp"
#include "workload.hpp"

namespace quest::workloads {

/** Estimator configuration (the paper's evaluation knobs). */
struct EstimatorConfig
{
    tech::Technology technology = tech::Technology::ProjectedD;
    qecc::Protocol protocol = qecc::Protocol::Steane;
    double physicalErrorRate = 1e-4; ///< per round (Section 7)
    double failureBudget = 0.5;      ///< total allowed failure
    bool qurePatch = true; ///< 7d x 3d patch vs 12.5 d^2 defect pair
};

/** Everything the figures need, for one (workload, config) pair. */
struct ResourceEstimate
{
    Workload workload;
    EstimatorConfig config;

    std::size_t codeDistance = 3;
    double logicalDepth = 0;      ///< serial logical time-steps
    double qeccRounds = 0;        ///< total QECC rounds executed
    double execTimeSeconds = 0;

    double appLogicalQubits = 0;
    double factoryLogicalQubits = 0;
    double physicalQubits = 0;

    distill::TFactoryPlan tPlan;

    /** @name Instruction counts over the whole execution. */
    ///@{
    double qeccInstructions = 0;    ///< physical QECC uops
    double appInstructions = 0;     ///< application logical instrs
    double distillInstructions = 0; ///< distillation logical instrs
    double syncTokens = 0;          ///< master-controller tokens
    double cacheFillInstructions = 0; ///< one-time icache fills
    ///@}

    /** @name Global bus bandwidth (bytes per second). */
    ///@{
    double baselineBandwidth = 0;
    double mceBandwidth = 0;
    double cachedBandwidth = 0;
    ///@}

    /** Figure 6: QECC instructions per application instruction. */
    double
    qeccRatio() const
    {
        return qeccInstructions / appInstructions;
    }

    /** Figure 13: distillation instrs per application instruction. */
    double
    tFactoryRatio() const
    {
        return distillInstructions / appInstructions;
    }

    /** Figure 14: bandwidth saving from hardware QECC alone. */
    double
    mceSavings() const
    {
        return baselineBandwidth / mceBandwidth;
    }

    /** Figure 14: bandwidth saving with the logical cache added. */
    double
    totalSavings() const
    {
        return baselineBandwidth / cachedBandwidth;
    }
};

/** The analytical estimator. */
class ResourceEstimator
{
  public:
    explicit ResourceEstimator(EstimatorConfig cfg = EstimatorConfig{})
        : _cfg(cfg)
    {}

    const EstimatorConfig &config() const { return _cfg; }

    /** Run the full pipeline for one workload. */
    ResourceEstimate estimate(const Workload &w) const;

  private:
    EstimatorConfig _cfg;

    /** Iterate distance selection to its fixpoint. */
    std::size_t solveDistance(const Workload &w,
                              double logical_qubits) const;
};

} // namespace quest::workloads

#endif // QUEST_WORKLOADS_ESTIMATOR_HPP
