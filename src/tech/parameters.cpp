#include "parameters.hpp"

#include "sim/logging.hpp"

namespace quest::tech {

std::string
technologyName(Technology tech)
{
    switch (tech) {
      case Technology::ExperimentalS: return "ExperimentalS";
      case Technology::ProjectedF: return "ProjectedF";
      case Technology::ProjectedD: return "ProjectedD";
    }
    sim::panic("invalid technology %d", int(tech));
}

GateLatencies
gateLatencies(Technology tech)
{
    using sim::nanoseconds;
    using sim::microseconds;
    switch (tech) {
      case Technology::ExperimentalS:
        return GateLatencies{microseconds(1), nanoseconds(25),
                             microseconds(1), nanoseconds(100)};
      case Technology::ProjectedF:
        return GateLatencies{nanoseconds(40), nanoseconds(10),
                             nanoseconds(35), nanoseconds(80)};
      case Technology::ProjectedD:
        return GateLatencies{nanoseconds(40), nanoseconds(5),
                             nanoseconds(35), nanoseconds(20)};
    }
    sim::panic("invalid technology %d", int(tech));
}

} // namespace quest::tech
