/**
 * @file
 * Josephson-junction memory technology model (Section 4.5, Table 2).
 *
 * JJ technology lacks dense memory: a memory cell costs tens of
 * junctions and read latency grows with bank capacity. The model
 * below is calibrated against the pipelined RQL storage results of
 * Dorojevets et al. that the paper cites:
 *
 *   bank capacity | JJ count | read latency | streaming power
 *   --------------+----------+--------------+----------------
 *        512 b    |  20434   |   2 cycles   |   0.700 uW
 *       1 Kb      |  42512   |   2 cycles   |   0.525 uW
 *       2 Kb      |  84132   |   3 cycles   |   0.550 uW
 *       4 Kb      | 170000   |   3 cycles   |  10.000 uW
 *
 * These reproduce the paper's published design points: a 1-channel
 * 4 Kb memory has a 3-cycle access latency and costs ~170k JJ / 10 uW
 * (footnote 6), a 4-channel 4x1Kb configuration has 2-cycle latency
 * and 6x the bandwidth of the 1-channel design (Section 4.5), and
 * the Table-2 JJ/power totals follow as channels x bank cost.
 */

#ifndef QUEST_TECH_JJ_MEMORY_HPP
#define QUEST_TECH_JJ_MEMORY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "parameters.hpp"

namespace quest::tech {

/** A multi-bank JJ microcode memory configuration. */
struct MemoryConfig
{
    std::size_t channels = 1; ///< independent banks, one read port each
    std::size_t bankBits = 4096; ///< capacity per bank in bits

    std::size_t totalBits() const { return channels * bankBits; }

    /** e.g. "4 Channel = 1Kb x 4" (Table-2 notation). */
    std::string toString() const;

    bool operator==(const MemoryConfig &other) const = default;
};

/** Technology model for JJ-based microcode memories. */
class JJMemoryModel
{
  public:
    JJMemoryModel() = default;

    /** JJ count for a single bank of the given capacity. */
    std::uint64_t bankJJCount(std::size_t bank_bits) const;

    /** Streaming power of a single bank in microwatts. */
    double bankPowerUw(std::size_t bank_bits) const;

    /** Read access latency of a bank in JJ clock cycles. */
    std::size_t bankLatencyCycles(std::size_t bank_bits) const;

    /** Total JJ count of a configuration. */
    std::uint64_t
    jjCount(const MemoryConfig &cfg) const
    {
        return cfg.channels * bankJJCount(cfg.bankBits);
    }

    /** Total streaming power of a configuration in microwatts. */
    double
    powerUw(const MemoryConfig &cfg) const
    {
        return double(cfg.channels) * bankPowerUw(cfg.bankBits);
    }

    /**
     * Sustained read bandwidth of a configuration in micro-ops per
     * second: each channel returns one microcodeWordBits-wide word
     * every `latency` JJ clock cycles, and a word packs
     * wordBits / uop_bits micro-ops.
     */
    double uopsPerSecond(const MemoryConfig &cfg,
                         std::size_t uop_bits) const;

    /**
     * The channel configurations explored by the paper for a fixed
     * total capacity: 1x4Kb, 2x2Kb, 4x1Kb and 8x512b.
     */
    static std::vector<MemoryConfig>
    standardConfigs(std::size_t total_bits = 4096);

    /** @name SEU protection (core::MicrocodeStore's parity model). */
    ///@{

    /** Words of microcodeWordBits covering an image. */
    static std::size_t imageWords(std::size_t image_bits);

    /**
     * Extra storage for one parity bit per stored word -- the cost
     * of making microcode SEUs detectable by the scrub loop.
     */
    static std::size_t parityOverheadBits(std::size_t image_bits);

    /**
     * Seconds a full image re-upload occupies the global bus at the
     * given link bandwidth (bytes per second).
     */
    static double reuploadSeconds(std::size_t image_bits,
                                  double bus_bytes_per_second);
    ///@}
};

} // namespace quest::tech

#endif // QUEST_TECH_JJ_MEMORY_HPP
