/**
 * @file
 * Technology parameters (paper Table 1 and Section 2).
 *
 * Three qubit technology points are evaluated:
 *  - ExperimentalS: measured superconducting devices (Tomita/Svore).
 *  - ProjectedF: projected gate latencies (Fowler et al.).
 *  - ProjectedD: DiVincenzo's projected latencies.
 *
 * One QECC round built from the canonical X/Z-syndrome circuit
 * (identity, preparation, four CNOTs, measurement) reproduces the
 * paper's T_ecc column exactly:
 *   T_ecc = t_1 + t_prep + 4 * t_cnot + t_meas
 *   ExperimentalS: 25n + 1u + 400n + 1u = 2.425 us  (paper: 2.42 us)
 *   ProjectedF:    10n + 40n + 320n + 35n = 405 ns  (paper: 405 ns)
 *   ProjectedD:     5n + 40n +  80n + 35n = 160 ns  (paper: 165 ns)
 */

#ifndef QUEST_TECH_PARAMETERS_HPP
#define QUEST_TECH_PARAMETERS_HPP

#include <string>

#include "sim/types.hpp"

namespace quest::tech {

/** Identifies one of the paper's qubit technology assumptions. */
enum class Technology
{
    ExperimentalS, ///< measured superconducting devices
    ProjectedF,    ///< Fowler et al. projections
    ProjectedD,    ///< DiVincenzo projections
};

/** All paper technologies, in Table-1 column order. */
inline constexpr Technology allTechnologies[] = {
    Technology::ExperimentalS,
    Technology::ProjectedF,
    Technology::ProjectedD,
};

/** Human-readable technology name. */
std::string technologyName(Technology tech);

/** Quantum gate latencies for one technology point (Table 1). */
struct GateLatencies
{
    sim::Tick tPrep;  ///< state preparation
    sim::Tick t1;     ///< single-qubit gate
    sim::Tick tMeas;  ///< measurement
    sim::Tick tCnot;  ///< two-qubit CNOT

    /**
     * Duration of one canonical syndrome-extraction round:
     * identity + preparation + 4 CNOTs + measurement.
     */
    sim::Tick
    eccRound() const
    {
        return t1 + tPrep + 4 * tCnot + tMeas;
    }
};

/** Table-1 latencies for a technology point. */
GateLatencies gateLatencies(Technology tech);

/** @name Fixed architectural constants (Section 2). */
///@{

/** Superconducting qubit operating frequency (Section 2.2). */
inline constexpr double qubitFrequencyHz = 100e6;

/** JJ control logic clock (Section 2.2: JJ gates clocked at 10 GHz). */
inline constexpr double jjClockHz = 10e9;

/** Physical (micro-op stream) instruction size in the baseline
 *  software-managed design (Section 3.3: byte-sized instructions). */
inline constexpr std::size_t physicalInstrBytes = 1;

/** Logical instruction size (Section 5.3: fixed at two bytes). */
inline constexpr std::size_t logicalInstrBytes = 2;

/** Word width of one microcode memory read (bits). */
inline constexpr std::size_t microcodeWordBits = 32;

/**
 * Per-qubit baseline instruction bandwidth (Section 3.3): each
 * physical qubit needs byte-sized instructions at its operating
 * rate, i.e. 100 MB/s.
 */
inline constexpr double
baselinePerQubitBandwidth()
{
    return qubitFrequencyHz * double(physicalInstrBytes);
}
///@}

} // namespace quest::tech

#endif // QUEST_TECH_PARAMETERS_HPP
