#include "jj_memory.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace quest::tech {

namespace {

struct BankPoint
{
    std::size_t bits;
    std::uint64_t jjs;
    double power_uw;
    std::size_t latency;
};

/** Calibration points (see file header). Sorted by capacity. */
constexpr BankPoint bankPoints[] = {
    { 512, 20434, 0.700, 2 },
    { 1024, 42512, 0.525, 2 },
    { 2048, 84132, 0.550, 3 },
    { 4096, 170000, 10.000, 3 },
};

const BankPoint *
findPoint(std::size_t bank_bits)
{
    for (const auto &p : bankPoints)
        if (p.bits == bank_bits)
            return &p;
    return nullptr;
}

} // namespace

std::string
MemoryConfig::toString() const
{
    auto size_str = [](std::size_t bits) -> std::string {
        if (bits % 1024 == 0)
            return std::to_string(bits / 1024) + "Kb";
        return std::to_string(bits) + "b";
    };
    return std::to_string(channels) + " Channel = " + size_str(bankBits)
        + " x " + std::to_string(channels);
}

std::uint64_t
JJMemoryModel::bankJJCount(std::size_t bank_bits) const
{
    QUEST_ASSERT(bank_bits > 0, "bank capacity must be positive");
    if (const BankPoint *p = findPoint(bank_bits))
        return p->jjs;
    // Off-table sizes: interpolate at ~41.5 JJ per bit (the average
    // cell cost across the calibration points).
    return static_cast<std::uint64_t>(std::llround(41.5 * double(bank_bits)));
}

double
JJMemoryModel::bankPowerUw(std::size_t bank_bits) const
{
    QUEST_ASSERT(bank_bits > 0, "bank capacity must be positive");
    if (const BankPoint *p = findPoint(bank_bits))
        return p->power_uw;
    // Off-table sizes: the streaming power of the mid-size banks is
    // nearly flat (~0.55 uW); scale gently with capacity.
    return 0.55 * std::sqrt(double(bank_bits) / 2048.0);
}

std::size_t
JJMemoryModel::bankLatencyCycles(std::size_t bank_bits) const
{
    QUEST_ASSERT(bank_bits > 0, "bank capacity must be positive");
    if (const BankPoint *p = findPoint(bank_bits))
        return p->latency;
    // Latency grows roughly one pipeline stage per 4x capacity.
    std::size_t latency = 1;
    std::size_t cap = 256;
    while (cap < bank_bits) {
        cap *= 4;
        ++latency;
    }
    return std::max<std::size_t>(latency, 1);
}

double
JJMemoryModel::uopsPerSecond(const MemoryConfig &cfg,
                             std::size_t uop_bits) const
{
    QUEST_ASSERT(uop_bits > 0 && uop_bits <= microcodeWordBits,
                 "uop width %zu out of range", uop_bits);
    const double words_per_second = jjClockHz
        / double(bankLatencyCycles(cfg.bankBits));
    const double uops_per_word =
        double(microcodeWordBits / uop_bits);
    return double(cfg.channels) * words_per_second * uops_per_word;
}

std::vector<MemoryConfig>
JJMemoryModel::standardConfigs(std::size_t total_bits)
{
    std::vector<MemoryConfig> out;
    for (std::size_t channels : { 1u, 2u, 4u, 8u }) {
        if (total_bits % channels != 0)
            continue;
        out.push_back(MemoryConfig{channels, total_bits / channels});
    }
    return out;
}

std::size_t
JJMemoryModel::imageWords(std::size_t image_bits)
{
    return (image_bits + microcodeWordBits - 1) / microcodeWordBits;
}

std::size_t
JJMemoryModel::parityOverheadBits(std::size_t image_bits)
{
    return imageWords(image_bits);
}

double
JJMemoryModel::reuploadSeconds(std::size_t image_bits,
                               double bus_bytes_per_second)
{
    QUEST_ASSERT(bus_bytes_per_second > 0,
                 "re-upload needs bus bandwidth");
    const double bytes = double((image_bits + 7) / 8);
    return bytes / bus_bytes_per_second;
}

} // namespace quest::tech
