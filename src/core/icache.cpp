#include "icache.hpp"

#include "sim/logging.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "tech/parameters.hpp"

namespace quest::core {

LogicalInstructionCache::LogicalInstructionCache(
    std::size_t capacity_instructions, sim::StatGroup &parent)
    : _capacity(capacity_instructions),
      _stats("icache"),
      _hits(_stats.scalar("hits", "logical cache hits")),
      _misses(_stats.scalar("misses", "logical cache misses")),
      _busBytes(_stats.scalar("bus_bytes",
                              "global bus bytes for logical delivery")),
      _mHits(sim::metrics::Registry::global().counter(
          "mce.icache.hits", "logical instruction-cache hits")),
      _mMisses(sim::metrics::Registry::global().counter(
          "mce.icache.misses", "logical instruction-cache misses")),
      _mBusBytes(sim::metrics::Registry::global().counter(
          "mce.icache.bus_bytes",
          "global bus bytes spent on logical-block delivery"))
{
    parent.addChild(_stats);
}

void
LogicalInstructionCache::touch(std::uint32_t block_id)
{
    auto it = _index.find(block_id);
    QUEST_ASSERT(it != _index.end(), "touch of non-resident block %u",
                 block_id);
    _lru.splice(_lru.begin(), _lru, it->second);
}

void
LogicalInstructionCache::evictUntilFits(std::size_t need)
{
    while (_resident + need > _capacity && !_lru.empty()) {
        const auto [victim, size] = _lru.back();
        _lru.pop_back();
        _index.erase(victim);
        _resident -= size;
    }
}

ICacheAccess
LogicalInstructionCache::execute(std::uint32_t block_id,
                                 const isa::LogicalTrace &body)
{
    QUEST_TRACE_SCOPE("mce", "icache_execute");
    ICacheAccess out;
    out.instructions = body.size();

    if (!enabled()) {
        // No cache: the whole body streams over the bus every time.
        out.bytesFetched = body.bytes();
        _busBytes += double(out.bytesFetched);
        ++_misses;
        ++_mMisses;
        _mBusBytes += out.bytesFetched;
        return out;
    }

    if (_index.contains(block_id)) {
        touch(block_id);
        out.hit = true;
        out.bytesFetched = replayTokenBytes;
        _busBytes += double(replayTokenBytes);
        ++_hits;
        ++_mHits;
        _mBusBytes += replayTokenBytes;
        return out;
    }

    // Miss: stream the body and install it.
    out.bytesFetched = body.bytes();
    _busBytes += double(out.bytesFetched);
    ++_misses;
    ++_mMisses;
    _mBusBytes += out.bytesFetched;

    if (body.size() <= _capacity) {
        evictUntilFits(body.size());
        _lru.emplace_front(block_id, body.size());
        _index[block_id] = _lru.begin();
        _resident += body.size();
    }
    return out;
}

} // namespace quest::core
