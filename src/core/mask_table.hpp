/**
 * @file
 * Hardware mask table (Sections 4.4-4.5, 5.1; Figure 8c).
 *
 * The mask table decides, per qubit, whether the micro-op latched
 * into the execution unit comes from the QECC-uop memory (error
 * correction running) or the logical-uop memory (a logical qubit
 * occupies the site, so syndrome generation is suppressed there).
 *
 * Two storage layouts are modelled:
 *  - Full: one mask bit per qubit, capacity N bits.
 *  - Coalesced: because logical operations act at d x d granularity,
 *    one bit per tile suffices -- capacity N / d^2 bits
 *    (Section 4.5).
 */

#ifndef QUEST_CORE_MASK_TABLE_HPP
#define QUEST_CORE_MASK_TABLE_HPP

#include <memory>

#include "qecc/logical_mask.hpp"
#include "sim/stats.hpp"

namespace quest::core {

/** Mask storage layout. */
enum class MaskLayout
{
    Full,      ///< one bit per qubit
    Coalesced, ///< one bit per d x d tile
};

/** The per-MCE mask table. */
class MaskTable
{
  public:
    /**
     * @param lattice Tile geometry (must outlive the table).
     * @param layout Storage layout.
     * @param d Code distance (tile edge for the coalesced layout).
     */
    MaskTable(const qecc::Lattice &lattice, MaskLayout layout,
              std::size_t d, sim::StatGroup &parent);

    MaskLayout layout() const { return _layout; }

    /** Mask-table capacity in bits (N or N/d^2). */
    std::size_t capacityBits() const;

    /** @return true when QECC uops are suppressed for this qubit. */
    bool masked(std::size_t q) const;

    /** Mask/unmask the footprint of a logical qubit. */
    void apply(const qecc::LogicalQubit &lq, bool masked_value);

    /** Unmask everything (used when recomputing from scratch). */
    void clear();

    /** Number of masked qubits on the tile. */
    std::size_t maskedQubitCount() const;

    double writeCount() const { return _writes.value(); }

  private:
    const qecc::Lattice *_lattice;
    MaskLayout _layout;
    qecc::FullMask _full;
    qecc::CoalescedMask _coalesced;

    sim::StatGroup _stats;
    sim::Scalar &_writes;
};

} // namespace quest::core

#endif // QUEST_CORE_MASK_TABLE_HPP
