/**
 * @file
 * End-to-end QuEST system facade.
 *
 * Wires the master controller, its MCE array, the logical
 * instruction cache and the distillation stream generator into one
 * object that examples and integration tests can drive: place
 * logical qubits, feed an application trace interleaved with
 * T-factory blocks, run QECC rounds, and read back the bandwidth
 * ledger that the paper's Figure-14 comparison is about.
 */

#ifndef QUEST_CORE_SYSTEM_HPP
#define QUEST_CORE_SYSTEM_HPP

#include <string>

#include "master_controller.hpp"

namespace quest::core {

/** Bandwidth outcome of a system run. */
struct SystemReport
{
    std::size_t rounds = 0;
    double baselineBytes = 0;  ///< software-managed QECC equivalent
    double questBusBytes = 0;  ///< bytes QuEST actually moved
    double bytesLogical = 0;
    double bytesSync = 0;
    double bytesSyndrome = 0;
    double bytesCorrections = 0;
    double bytesCache = 0;
    double bytesScrub = 0; ///< microcode scrub polls / re-uploads

    /** Bandwidth reduction factor (Figure 14, cycle-level). */
    double
    savings() const
    {
        return questBusBytes > 0 ? baselineBytes / questBusBytes : 0.0;
    }

    std::string toString() const;
};

/** The full control processor plus quantum substrate model. */
class QuestSystem
{
  public:
    explicit QuestSystem(const MasterConfig &cfg)
        : _master(cfg)
    {}

    MasterController &master() { return _master; }

    /**
     * Place one double-defect logical qubit on every MCE tile.
     * Tiles must be at least (d+3) x (3d+3) sites; configure
     * MceConfig::latticeRows/Cols accordingly.
     * @return the anchor used.
     */
    qecc::Coord placeLogicalQubits();

    /**
     * Run a mixed workload: dispatch `app` round-robin across the
     * run, execute `distill_body` through each MCE's icache every
     * `distill_period` rounds (the continuously-running T-factory
     * pattern), and keep QECC rounds flowing throughout.
     */
    void runMixedWorkload(const isa::LogicalTrace &app,
                          const isa::LogicalTrace &distill_body,
                          std::size_t rounds,
                          std::size_t distill_period = 8);

    /** Snapshot the bandwidth ledger. */
    SystemReport report() const;

  private:
    MasterController _master;
};

/**
 * A MceConfig sized so a distance-d double-defect logical qubit
 * (plus braiding headroom) fits the tile.
 */
MceConfig tileConfigForLogicalQubits(std::size_t distance);

} // namespace quest::core

#endif // QUEST_CORE_SYSTEM_HPP
