#include "issue_queue.hpp"

#include "sim/logging.hpp"

namespace quest::core {

std::size_t
uopLatencyCycles(isa::PhysOpcode op)
{
    using isa::PhysOpcode;
    switch (op) {
      case PhysOpcode::MeasZ:
      case PhysOpcode::MeasX:
        return 4;
      case PhysOpcode::CnotN:
      case PhysOpcode::CnotE:
      case PhysOpcode::CnotS:
      case PhysOpcode::CnotW:
      case PhysOpcode::CnotTargetN:
      case PhysOpcode::CnotTargetE:
      case PhysOpcode::CnotTargetS:
      case PhysOpcode::CnotTargetW:
        return 2;
      default:
        return 1;
    }
}

Scoreboard::Scoreboard(std::size_t num_uops) : _entries(num_uops) {}

void
Scoreboard::addProducer(std::uint32_t uop, std::uint32_t producer)
{
    QUEST_ASSERT(uop < _entries.size() && producer < _entries.size(),
                 "scoreboard edge %u <- %u beyond %zu uops", uop,
                 producer, _entries.size());
    QUEST_ASSERT(producer < uop,
                 "producer %u does not precede uop %u in program "
                 "order",
                 producer, uop);
    _entries[uop].producers.push_back(producer);
}

std::uint64_t
Scoreboard::completion(std::uint32_t uop) const
{
    const Entry &e = _entries.at(uop);
    QUEST_ASSERT(e.issued, "uop %u has not issued", uop);
    return e.completes;
}

bool
Scoreboard::ready(std::uint32_t uop, std::uint64_t cycle) const
{
    for (const std::uint32_t p : _entries.at(uop).producers) {
        const Entry &prod = _entries[p];
        if (!prod.issued || prod.completes > cycle)
            return false;
    }
    return true;
}

void
Scoreboard::markIssued(std::uint32_t uop, std::uint64_t completes)
{
    Entry &e = _entries.at(uop);
    QUEST_ASSERT(!e.issued, "uop %u issued twice", uop);
    e.issued = true;
    e.completes = completes;
}

IssueQueue::IssueQueue(std::size_t capacity) : _capacity(capacity)
{
    QUEST_ASSERT(capacity > 0, "issue queue needs capacity");
}

void
IssueQueue::push(std::uint32_t uop)
{
    QUEST_ASSERT(!full(), "issue queue overflow (capacity %zu)",
                 _capacity);
    _entries.push_back(uop);
}

void
IssueQueue::erase(std::size_t position)
{
    QUEST_ASSERT(position < _entries.size(),
                 "issue queue erase at %zu beyond size %zu", position,
                 _entries.size());
    _entries.erase(_entries.begin()
                   + std::ptrdiff_t(position));
}

} // namespace quest::core
