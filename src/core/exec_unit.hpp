/**
 * @file
 * Quantum execution unit: the prime-line architecture (Section 2.3,
 * Figure 4; execution steps 1-3 of Figure 8a).
 *
 * An arbitrary waveform generator continuously drives a prime-line
 * analog bus; a matrix of microwave switches multiplexes waveforms
 * onto qubits. Executing a physical instruction means (1) reading
 * the uop from microcode memory, (2) latching it onto the target
 * switch, and (3) firing the master clock so all latched switches
 * pass their waveform simultaneously -- the lockstep VLIW execution
 * model. This class models the latch array and the master clock
 * with full accounting; the analog path is abstracted to "which
 * waveform reached which qubit this cycle".
 */

#ifndef QUEST_CORE_EXEC_UNIT_HPP
#define QUEST_CORE_EXEC_UNIT_HPP

#include <vector>

#include "isa/opcodes.hpp"
#include "sim/stats.hpp"

namespace quest::core {

/** The switch-matrix execution unit of one MCE. */
class QuantumExecutionUnit
{
  public:
    QuantumExecutionUnit(std::size_t num_qubits, sim::StatGroup &parent);

    std::size_t numQubits() const { return _latched.size(); }

    /**
     * Latch a uop onto qubit q's microwave switch (steps 1-2).
     * Overwrites whatever was latched before; switches hold their
     * value until the next latch.
     */
    void latch(std::size_t q, isa::PhysOpcode op);

    /**
     * Fire the master clock (step 3): every switch passes its
     * latched waveform. @return the uops applied this cycle,
     * indexed by qubit.
     */
    const std::vector<isa::PhysOpcode> &masterClock();

    /**
     * Drop qubit q's switch back to Nop after its waveform has
     * played. The in-order pipeline never needs this (every switch
     * is re-latched each sub-cycle), but the dynamically scheduled
     * pipeline latches only the uops issued this cycle and must
     * clear them afterwards so the next master clock does not replay
     * them. Not an instruction fetch, so the latch counter is
     * untouched.
     */
    void release(std::size_t q);

    /** uop currently latched on a switch. */
    isa::PhysOpcode latched(std::size_t q) const
    {
        return _latched.at(q);
    }

    double latchCount() const { return _latches.value(); }
    double firedInstructionCount() const { return _fired.value(); }
    double masterClockCount() const { return _clocks.value(); }

  private:
    std::vector<isa::PhysOpcode> _latched;
    sim::StatGroup _stats;
    sim::Scalar &_latches;
    sim::Scalar &_clocks;
    sim::Scalar &_fired; ///< non-NOP instructions executed
};

} // namespace quest::core

#endif // QUEST_CORE_EXEC_UNIT_HPP
