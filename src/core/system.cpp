#include "system.hpp"

#include <cstdio>

#include "sim/logging.hpp"

namespace quest::core {

std::string
SystemReport::toString() const
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "rounds=%zu baseline=%.3e B quest=%.3e B "
                  "(logical=%.3e sync=%.3e syndrome=%.3e corr=%.3e "
                  "cache=%.3e scrub=%.3e) savings=%.1fx",
                  rounds, baselineBytes, questBusBytes, bytesLogical,
                  bytesSync, bytesSyndrome, bytesCorrections,
                  bytesCache, bytesScrub, savings());
    return buf;
}

MceConfig
tileConfigForLogicalQubits(std::size_t distance)
{
    MceConfig cfg;
    cfg.distance = distance;
    // Double defect: two d-site squares separated by 2d columns,
    // plus a one-site masked perimeter and braiding headroom.
    cfg.latticeRows = distance + 5;
    cfg.latticeCols = 4 * distance + 5;
    return cfg;
}

qecc::Coord
QuestSystem::placeLogicalQubits()
{
    const qecc::Coord anchor{2, 2};
    for (std::size_t i = 0; i < _master.numMces(); ++i) {
        const int id = _master.mce(i).defineLogicalQubit(anchor);
        QUEST_ASSERT(id == 0,
                     "expected the first logical qubit on MCE %zu", i);
    }
    return anchor;
}

void
QuestSystem::runMixedWorkload(const isa::LogicalTrace &app,
                              const isa::LogicalTrace &distill_body,
                              std::size_t rounds,
                              std::size_t distill_period)
{
    QUEST_ASSERT(distill_period > 0, "distillation period must be > 0");

    std::size_t app_pos = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
        // A few logical instructions per round (ILP 2-3, Section 5.2).
        for (std::size_t k = 0; k < 2 && app_pos < app.size(); ++k)
            _master.dispatch(app.at(app_pos++));

        // T-factories run continuously: every period, each MCE
        // replays the (deterministic) distillation block.
        if (r % distill_period == 0 && !distill_body.empty()) {
            for (std::size_t i = 0; i < _master.numMces(); ++i)
                _master.dispatchBlock(i, /*block_id=*/0,
                                      distill_body);
        }

        _master.broadcastSync();
        _master.stepRound();
    }
    _master.decodeNow();
}

SystemReport
QuestSystem::report() const
{
    SystemReport out;
    out.rounds = _master.roundsRun();
    out.baselineBytes = _master.baselineEquivalentBytes();
    out.bytesLogical = _master.busBytesLogical();
    out.bytesSync = _master.busBytesSync();
    out.bytesSyndrome = _master.busBytesSyndrome();
    out.bytesCorrections = _master.busBytesCorrections();
    out.bytesCache = _master.busBytesCacheTraffic();
    out.bytesScrub = _master.busBytesScrub();
    out.questBusBytes = _master.totalBusBytes();
    return out;
}

} // namespace quest::core
