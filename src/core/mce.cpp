#include "mce.hpp"

#include <algorithm>

#include "qecc/braiding.hpp"
#include "qecc/schedule.hpp"
#include "sim/fault_injector.hpp"
#include "sim/logging.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace quest::core {

using isa::LogicalInstr;
using isa::LogicalOpcode;
using isa::PhysOpcode;
using qecc::Coord;
using qecc::LogicalQubit;
using qecc::RoundSchedule;
using qecc::SubCycle;

namespace {

/** Stored image size of the tile's QECC program under its design. */
std::size_t
microcodeImageBits(const MceConfig &cfg, std::size_t qubits)
{
    const MicrocodeModel model(qecc::protocolSpec(cfg.protocol),
                               cfg.technology);
    return model.capacityBits(cfg.microcodeDesign, qubits);
}

/** The installed pre-flight verification hook (none by default). */
PreflightVerifier g_preflightVerifier = nullptr;

} // namespace

void
setPreflightVerifier(PreflightVerifier fn)
{
    g_preflightVerifier = fn;
}

PreflightVerifier
preflightVerifier()
{
    return g_preflightVerifier;
}

Mce::Mce(std::string name, const MceConfig &cfg)
    : _name(std::move(name)), _cfg(cfg),
      _lattice(std::make_unique<qecc::Lattice>(
          cfg.latticeRows ? cfg.latticeRows : 2 * cfg.distance - 1,
          cfg.latticeCols ? cfg.latticeCols : 2 * cfg.distance - 1)),
      _rng(cfg.seed),
      _frame(_lattice->numQubits()),
      _ledger(_lattice->numQubits()),
      _channel(cfg.errorRates, _rng),
      _microcodeStore(microcodeImageBits(cfg, _lattice->numQubits())),
      _stats(_name),
      _mask(*_lattice, cfg.maskLayout, cfg.distance, _stats),
      _execUnit(_lattice->numQubits(), _stats),
      _icache(cfg.icacheCapacity, _stats),
      _lutDecoder(*_lattice),
      _microcodeBits(_stats.scalar(
          "microcode_bits",
          "bits streamed out of the local microcode memory")),
      _qeccUops(_stats.scalar("qecc_uops",
                              "QECC uops issued to the exec unit")),
      _logicalUops(_stats.scalar(
          "logical_uops", "logical (transverse) uops issued")),
      _eventsLocal(_stats.scalar(
          "events_local", "detection events resolved by the LUT")),
      _roundsStat(_stats.scalar("qecc_rounds", "QECC rounds executed")),
      _seuUopErrors(_stats.scalar(
          "seu_uop_errors",
          "stray errors from SEU-corrupted microcode words")),
      _mReplayRounds(sim::metrics::Registry::global().counter(
          "mce.replay.rounds",
          "QECC rounds replayed from microcode")),
      _mReplayUops(sim::metrics::Registry::global().counter(
          "mce.replay.uops", "non-Nop uops streamed per replay")),
      _mReplayUcodeBits(sim::metrics::Registry::global().counter(
          "mce.replay.microcode_bits",
          "bits read out of the local microcode memory")),
      _mReplayHungRounds(sim::metrics::Registry::global().counter(
          "mce.replay.hung_rounds",
          "rounds skipped because the engine was wedged")),
      _mReplaySeuErrors(sim::metrics::Registry::global().counter(
          "mce.replay.seu_uop_errors",
          "stray errors replayed from SEU-corrupted words")),
      _mLogicalInstrs(sim::metrics::Registry::global().counter(
          "mce.pipeline.logical_instrs",
          "logical instructions entering the MCE pipeline")),
      _mSchedRounds(sim::metrics::Registry::global().counter(
          "sched.replay.rounds",
          "QECC rounds replayed through the dynamic scheduler")),
      _mSchedCycles(sim::metrics::Registry::global().counter(
          "sched.replay.cycles",
          "pipeline cycles spent replaying scheduled rounds"))
{
    const auto &spec = qecc::protocolSpec(cfg.protocol);
    _baseSchedule = std::make_unique<RoundSchedule>(
        qecc::buildRoundSchedule(*_lattice, spec));
    rebuildMaskedSchedule();

    if (_cfg.verifyOnLoad) {
        if (PreflightVerifier fn = preflightVerifier())
            fn(*this);
        else
            sim::fatal("%s: verify-on-load requested but no "
                       "pre-flight verifier is installed (link "
                       "quest_verify and call "
                       "verify::installPreflightGate())",
                       _name.c_str());
    }
}

void
Mce::rebuildMaskedSchedule()
{
    // Copy the base program and blank every uop addressed to a
    // masked qubit: syndrome generation is suppressed there and the
    // slot is available to the logical-uop path instead.
    auto masked = std::make_unique<RoundSchedule>(
        *_lattice, _baseSchedule->spec());
    for (std::size_t s = 0; s < _baseSchedule->depth(); ++s) {
        SubCycle sc = _baseSchedule->subCycle(s);
        for (std::size_t q = 0; q < sc.uops.size(); ++q)
            if (_mask.masked(q))
                sc.uops[q] = PhysOpcode::Nop;
        masked->addSubCycle(std::move(sc));
    }
    _maskedSchedule = std::move(masked);
    _extractor = std::make_unique<qecc::SyndromeExtractor>(
        *_maskedSchedule);
    // The dependence graph changed with the program; the next
    // scheduled round (or oracle consumer) re-plans lazily.
    _oracle.reset();
    _planValid = false;
}

const verify::DependencyOracle &
Mce::dependencyOracle()
{
    if (!_oracle)
        _oracle = std::make_unique<verify::DependencyOracle>(
            verify::DependencyOracle::fromSchedule(
                *_maskedSchedule));
    return *_oracle;
}

const TileSchedule &
Mce::lastIssuePlan() const
{
    QUEST_ASSERT(_planValid,
                 "%s: no out-of-order round has been planned",
                 _name.c_str());
    return _issuePlan;
}

std::uint64_t
Mce::replayOutOfOrder(std::size_t uop_bits)
{
    const verify::DependencyOracle &oracle = dependencyOracle();
    if (!_planValid) {
        if (!_scheduler)
            _scheduler =
                std::make_unique<DynamicScheduler>(_cfg.sched);
        _issuePlan = _scheduler->schedule(
            oracle, SchedulingMode::OutOfOrder, 1);
        _planValid = true;
    }

    // Replay the planned issue schedule: each issue cycle latches
    // its uops, fires the master clock, and drops the switches back
    // to Nop once the waveforms have played. Issue order is a pure
    // timing reshuffle — the functional effects retire in program
    // order through the extractor below, exactly as in-order replay.
    const auto &uops = oracle.uops();
    std::uint64_t round_uops = 0;
    for (const auto &issue_cycle : _issuePlan.cycles) {
        if (issue_cycle.empty())
            continue;
        for (const std::uint32_t id : issue_cycle)
            _execUnit.latch(uops[id].qubit, uops[id].op);
        _execUnit.masterClock();
        for (const std::uint32_t id : issue_cycle)
            _execUnit.release(uops[id].qubit);
        round_uops += issue_cycle.size();
    }

    // Fetch accounting is identical to in-order replay: the stream
    // still visits every slot (Nops cost fetch bandwidth and are
    // discarded at decode), so the microcode-bit totals match.
    _microcodeBits +=
        double(_issuePlan.slotsFetched) * double(uop_bits);
    _mReplayUcodeBits +=
        std::uint64_t(_issuePlan.slotsFetched) * uop_bits;
    ++_mSchedRounds;
    _mSchedCycles += _issuePlan.cycles.size();
    return round_uops;
}

void
Mce::rebuildMask()
{
    _mask.clear();
    for (const auto &[id, lq] : _logical)
        _mask.apply(lq, true);
    rebuildMaskedSchedule();
}

int
Mce::defineLogicalQubit(Coord anchor)
{
    LogicalQubit lq(*_lattice, anchor, _cfg.distance);
    QUEST_ASSERT(lq.fits(),
                 "logical qubit at (%d,%d) does not fit the %zux%zu tile",
                 anchor.row, anchor.col, _lattice->rows(),
                 _lattice->cols());
    const int id = _nextLogicalId++;
    _logical.emplace(id, lq);
    rebuildMask();
    return id;
}

void
Mce::releaseLogicalQubit(int id)
{
    auto it = _logical.find(id);
    QUEST_ASSERT(it != _logical.end(), "unknown logical qubit %d", id);
    _logical.erase(it);
    rebuildMask();
}

void
Mce::applyTransverse(LogicalOpcode op, const LogicalQubit &lq)
{
    for (std::size_t q : lq.footprint()) {
        if (!_lattice->isData(_lattice->coord(q)))
            continue;
        switch (op) {
          case LogicalOpcode::PrepZ:
          case LogicalOpcode::PrepX:
            _frame.reset(q);
            if (_cfg.errorRates.prep > 0.0)
                _channel.afterPrep(_frame, q);
            break;
          case LogicalOpcode::Hadamard:
            _frame.h(q);
            break;
          case LogicalOpcode::Phase:
            _frame.s(q);
            break;
          case LogicalOpcode::X:
          case LogicalOpcode::Z:
          case LogicalOpcode::MeasZ:
          case LogicalOpcode::MeasX:
            // Pauli gates commute through the error frame, and
            // measurement reads it; neither changes the frame.
            break;
          default:
            sim::panic("opcode %s is not transverse",
                       isa::logicalOpcodeName(op).c_str());
        }
        _execUnit.latch(q, PhysOpcode::Nop);
        ++_logicalUops;
    }
}

void
Mce::executeLogical(const LogicalInstr &instr)
{
    QUEST_TRACE_SCOPE("mce", "logical_instr");
    ++_mLogicalInstrs;
    if (instr.opcode == LogicalOpcode::Nop
        || instr.opcode == LogicalOpcode::SyncToken)
        return;

    if (isa::isTransverse(instr.opcode)) {
        auto it = _logical.find(int(instr.operand));
        QUEST_ASSERT(it != _logical.end(),
                     "logical instruction targets unknown qubit L%u",
                     instr.operand);
        applyTransverse(instr.opcode, it->second);
        return;
    }

    if (isa::isMaskInstruction(instr.opcode)) {
        auto it = _logical.find(int(instr.operand));
        QUEST_ASSERT(it != _logical.end(),
                     "mask instruction targets unknown qubit L%u",
                     instr.operand);
        LogicalQubit &lq = it->second;
        // Reshape a trial copy first; an instruction that would push
        // the defect off the tile (or annihilate it) is dropped with
        // a warning rather than corrupting the mask.
        LogicalQubit trial = lq;
        switch (instr.opcode) {
          case LogicalOpcode::MaskExpand:
          case LogicalOpcode::Braid:
            trial.expandA(1);
            break;
          case LogicalOpcode::MaskContract:
            if (trial.defectA().size <= 2) {
                sim::warn("dropping %s: defect A too small",
                          instr.toString().c_str());
                return;
            }
            trial.contractA(1);
            break;
          case LogicalOpcode::MaskMove:
            trial.move(0, 2);
            break;
          default:
            sim::panic("unhandled mask opcode");
        }
        if (!trial.fits()) {
            sim::warn("dropping %s: footprint leaves the tile",
                      instr.toString().c_str());
            return;
        }
        lq = trial;
        rebuildMask();
        return;
    }

    if (instr.opcode == LogicalOpcode::T
        || instr.opcode == LogicalOpcode::Cnot) {
        // T consumes a distilled magic state; CNOT is a braiding
        // sequence. Both are multi-step macro-operations whose
        // instruction-delivery cost is what this model accounts:
        // charge one logical uop per footprint qubit.
        auto it = _logical.find(int(instr.operand));
        QUEST_ASSERT(it != _logical.end(),
                     "instruction targets unknown logical qubit L%u",
                     instr.operand);
        _logicalUops += double(it->second.footprint().size());
        return;
    }

    sim::panic("unhandled logical opcode %s",
               isa::logicalOpcodeName(instr.opcode).c_str());
}

ICacheAccess
Mce::executeBlock(std::uint32_t block_id, const isa::LogicalTrace &body)
{
    const ICacheAccess access = _icache.execute(block_id, body);
    // Whether hit or miss, the block executes locally. The block
    // bodies operate on factory qubits modelled outside this tile,
    // so only delivery is accounted here.
    _logicalUops += double(body.size());
    return access;
}

std::size_t
Mce::braidCnot(int control_id, int target_id)
{
    auto cit = _logical.find(control_id);
    auto tit = _logical.find(target_id);
    QUEST_ASSERT(cit != _logical.end() && tit != _logical.end(),
                 "braid between unknown logical qubits %d, %d",
                 control_id, target_id);
    QUEST_ASSERT(control_id != target_id,
                 "braid needs two distinct logical qubits");
    LogicalQubit &control = cit->second;
    LogicalQubit &target = tit->second;

    // Thread the channel between the target's defects: contract the
    // moving defect so (size + clearance) fits the d-column gap.
    const qecc::MaskSquare original = control.defectA();
    const std::size_t gap = _cfg.distance; // defect separation - size
    const std::size_t moving_size =
        std::min(original.size, gap > 2 ? gap - 2 : 1);

    const qecc::BraidPlanner planner(*_lattice);
    const qecc::MaskSquare moving{original.topLeft, moving_size};
    const qecc::BraidPlan plan =
        planner.planLoop(moving, target.defectA());

    // Everything the loop must steer clear of: the stationary
    // defects of both qubits (it circles target A at clearance 1).
    std::vector<qecc::MaskSquare> obstacles{ control.defectB(),
                                             target.defectB() };
    for (const auto &[id, lq] : _logical) {
        if (id == control_id || id == target_id)
            continue;
        obstacles.push_back(lq.defectA());
        obstacles.push_back(lq.defectB());
    }
    if (!planner.validate(plan, moving_size, obstacles)) {
        sim::warn("dropping braid CNOT L%d->L%d: no valid loop on "
                  "this tile", control_id, target_id);
        return 0;
    }

    // Execute: one mask update + d QECC rounds per step.
    auto place = [&](const qecc::MaskSquare &square) {
        control.setDefectA(square);
        rebuildMask();
    };
    place(moving); // contract to travel size
    for (std::size_t i = 1; i < plan.positions.size(); ++i) {
        place(qecc::MaskSquare{plan.positions[i], moving_size});
        for (std::size_t r = 0; r < _cfg.distance; ++r)
            runQeccRound();
    }
    place(original); // restore the full-distance defect
    return plan.steps();
}

void
Mce::stretchNoise(double factor, std::size_t rounds)
{
    QUEST_ASSERT(factor >= 1.0, "noise stretch below 1 (%g)", factor);
    _stretchFactor = factor;
    _stretchRounds = rounds;
}

const qecc::SyndromeRound &
Mce::runQeccRound()
{
    QUEST_TRACE_SCOPE("mce", "qecc_round");
    if (_hung) {
        ++_mReplayHungRounds;
        // A wedged engine streams nothing: the tile idles
        // uncorrected and decoheres for the round. No syndrome is
        // extracted (nothing read the ancillas), so the errors
        // surface in the first window after recovery.
        for (std::size_t q = 0; q < _lattice->numQubits(); ++q)
            _channel.idle(_frame, q);
        return _lastRound;
    }

    // Decoder-deadline fallback: a tile whose correction landed
    // late decoheres for the stretched interval (host::delivery's
    // stretch model applied at the channel).
    if (_stretchRounds > 0) {
        quantum::ErrorRates stretched = _cfg.errorRates;
        stretched.idle =
            std::min(1.0, stretched.idle * _stretchFactor);
        stretched.gate1 =
            std::min(1.0, stretched.gate1 * _stretchFactor);
        stretched.gate2 =
            std::min(1.0, stretched.gate2 * _stretchFactor);
        stretched.prep =
            std::min(1.0, stretched.prep * _stretchFactor);
        stretched.meas =
            std::min(1.0, stretched.meas * _stretchFactor);
        _channel.setRates(stretched);
    }

    // SEU-corrupted microcode: every parity-failed word streams one
    // wrong uop per replay, landing as a stray X on a random data
    // qubit until the master's scrub loop rewrites the image.
    if (_faults != nullptr
        && _microcodeStore.parityErrorWords() > 0) {
        const auto data = _lattice->sites(qecc::SiteType::Data);
        sim::Rng &placement =
            _faults->rng(sim::FaultSite::MicrocodeSeu);
        for (std::size_t k = 0;
             k < _microcodeStore.parityErrorWords(); ++k) {
            _frame.injectX(_lattice->index(
                data[placement.uniformInt(data.size())]));
            ++_seuUopErrors;
            ++_mReplaySeuErrors;
        }
    }

    const RoundSchedule &sched = *_maskedSchedule;
    const std::size_t n = _lattice->numQubits();

    // Microcode pipeline: stream one uop per qubit per sub-cycle
    // through the latch array, then fire the master clock.
    const MicrocodeModel model(sched.spec(), _cfg.technology);
    const std::size_t uop_bits =
        model.uopBits(_cfg.microcodeDesign, n);
    std::uint64_t round_uops = 0;
    if (_cfg.scheduling == SchedulingMode::OutOfOrder) {
        round_uops = replayOutOfOrder(uop_bits);
    } else {
        for (std::size_t s = 0; s < sched.depth(); ++s) {
            const SubCycle &sc = sched.subCycle(s);
            for (std::size_t q = 0; q < n; ++q) {
                _execUnit.latch(q, sc.uops[q]);
                if (sc.uops[q] != PhysOpcode::Nop)
                    ++round_uops;
            }
            _microcodeBits += double(n * uop_bits);
            _mReplayUcodeBits += std::uint64_t(n) * uop_bits;
            _execUnit.masterClock();
        }
    }
    _qeccUops += double(round_uops);
    _mReplayUops += round_uops;

    // Functional effect: evolve the frame and read the syndromes.
    _lastRound = _extractor->runRound(_frame, &_channel);
    // Streaming mode hands rounds off as extracted; buffering them
    // here too would grow _window without bound.
    if (_windowBuffering)
        _window.push_back(_lastRound);
    ++_roundsRun;
    ++_roundsStat;
    ++_mReplayRounds;

    if (_stretchRounds > 0 && --_stretchRounds == 0)
        _channel.setRates(_cfg.errorRates);
    return _lastRound;
}

decode::DetectionEvents
Mce::collectResidualEvents()
{
    const decode::DetectionEvents events =
        decode::extractDetectionEventsWindow(
            _window, *_extractor,
            _windowBaseline ? &*_windowBaseline : nullptr,
            _windowFirstRound);

    decode::LocalDecodeResult local = _lutDecoder.decodeLocal(events);
    decode::applyCorrection(_ledger, local.correction);
    _eventsLocal += double(local.resolvedEvents);

    if (!_window.empty()) {
        _windowBaseline = _window.back();
        _windowFirstRound = _roundsRun;
        _window.clear();
    }
    return local.residual;
}

void
Mce::applyCorrection(const decode::Correction &corr)
{
    decode::applyCorrection(_ledger, corr);
}

std::size_t
Mce::residualErrorWeight() const
{
    // Only protected data qubits matter: ancillas are re-prepared
    // every round, and a data qubit all of whose checks are masked
    // has error correction deliberately disabled -- its errors are
    // the logical qubit's business, not the decoder's.
    std::size_t w = 0;
    for (std::size_t q = 0; q < _frame.numQubits(); ++q) {
        const qecc::Coord c = _lattice->coord(q);
        if (!_lattice->isData(c))
            continue;
        bool protected_qubit = false;
        for (qecc::Direction dir : qecc::allDirections) {
            const auto n = _lattice->neighbour(c, dir);
            if (n && _lattice->isAncilla(*n)
                && !_mask.masked(_lattice->index(*n))) {
                protected_qubit = true;
                break;
            }
        }
        if (!protected_qubit)
            continue;
        const bool x = _frame.xError(q) != _ledger.xError(q);
        const bool z = _frame.zError(q) != _ledger.zError(q);
        if (x || z)
            ++w;
    }
    return w;
}

} // namespace quest::core
