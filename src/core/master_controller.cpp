#include "master_controller.hpp"

#include <algorithm>

#include "sim/logging.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "tech/jj_memory.hpp"
#include "tech/parameters.hpp"

namespace quest::core {

namespace {

NetworkConfig
networkConfigFor(const MasterConfig &cfg)
{
    NetworkConfig net = cfg.network;
    net.mceCount = cfg.numMces;
    return net;
}

decode::DeadlineConfig
deadlineConfigFor(const MasterConfig &cfg)
{
    decode::DeadlineConfig dl;
    if (!cfg.modelDecodeDeadline)
        return dl; // windowTicks 0: deadline arithmetic disabled
    const auto &spec = qecc::protocolSpec(cfg.mce.protocol);
    const auto lat = tech::gateLatencies(cfg.mce.technology);
    const std::size_t window = cfg.decodeWindowRounds
        ? cfg.decodeWindowRounds
        : cfg.mce.distance;
    dl.windowTicks = sim::Tick(window) * spec.roundDuration(lat);
    return dl;
}

/**
 * Streaming deadline: the real-time budget for one window is the
 * wall-clock the stride's worth of rounds takes to extract -- the
 * decoder must keep up with the slide rate, exactly as the offline
 * decoder must keep up with its decode cadence. With
 * streamStrideRounds == decodeWindowRounds the two budgets coincide,
 * which the W==S equivalence test relies on.
 */
decode::DeadlineConfig
streamDeadlineFor(const MasterConfig &cfg, std::size_t stride)
{
    decode::DeadlineConfig dl;
    if (!cfg.modelDecodeDeadline)
        return dl;
    const auto &spec = qecc::protocolSpec(cfg.mce.protocol);
    const auto lat = tech::gateLatencies(cfg.mce.technology);
    dl.windowTicks = sim::Tick(stride) * spec.roundDuration(lat);
    return dl;
}

/** Heartbeat ping/response token size (a sync-class packet). */
constexpr std::size_t heartbeatBytes = tech::logicalInstrBytes;

/** Microcode parity status poll size. */
constexpr std::size_t scrubPollBytes = tech::logicalInstrBytes;

} // namespace

MasterController::MasterController(const MasterConfig &cfg)
    : _cfg(cfg),
      _faults(cfg.faults),
      _deadline(deadlineConfigFor(cfg)),
      _missedHeartbeats(cfg.numMces, 0),
      _stats("master"),
      _network(networkConfigFor(cfg), _stats),
      _bytesLogical(_stats.scalar(
          "bus_bytes_logical", "logical instruction packets (bytes)")),
      _bytesSync(_stats.scalar("bus_bytes_sync",
                               "synchronization tokens (bytes)")),
      _bytesSyndrome(_stats.scalar(
          "bus_bytes_syndrome", "residual syndrome uploads (bytes)")),
      _bytesCorrections(_stats.scalar(
          "bus_bytes_corrections", "correction downloads (bytes)")),
      _bytesCache(_stats.scalar(
          "bus_bytes_cache",
          "distillation block fills and replay tokens (bytes)")),
      _bytesScrub(_stats.scalar(
          "bus_bytes_scrub",
          "microcode parity polls and image re-uploads (bytes)")),
      _faultStats("faults"),
      _seuInjected(_faultStats.scalar(
          "seu_injected", "microcode SEU bit-flips injected")),
      _seuDetected(_faultStats.scalar(
          "seu_detected", "parity-failed words caught by scrubbing")),
      _seuSilent(_faultStats.scalar(
          "seu_silent_repaired",
          "parity-masked flips cleared by an image rewrite")),
      _scrubs(_faultStats.scalar(
          "scrubs", "microcode image re-uploads")),
      _decoderOverruns(_faultStats.scalar(
          "decoder_overruns", "global decodes past the window deadline")),
      _decoderFallbacks(_faultStats.scalar(
          "decoder_fallbacks",
          "windows degraded to the union-find cluster decoder")),
      _heartbeats(_faultStats.scalar(
          "heartbeats", "watchdog heartbeats sent")),
      _heartbeatsMissed(_faultStats.scalar(
          "heartbeats_missed", "heartbeats a wedged MCE failed to answer")),
      _hangsInjected(_faultStats.scalar(
          "hangs_injected", "MCE control hangs injected")),
      _quarantines(_faultStats.scalar(
          "quarantines", "tiles quarantined by the watchdog")),
      _resumes(_faultStats.scalar(
          "resumes", "quarantined tiles re-synced and resumed")),
      _busEscalations(_faultStats.scalar(
          "bus_escalations",
          "supervisor re-issues after the link retry budget failed")),
      _packetsAbandoned(_faultStats.scalar(
          "packets_abandoned",
          "bus packets abandoned to the out-of-band slow path"))
{
    QUEST_ASSERT(cfg.numMces > 0, "need at least one MCE");
    _network.attachFaults(&_faults);
    if (cfg.sharedFetchBandwidth > 0) {
        _arbiter = std::make_unique<DynamicScheduler>(cfg.mce.sched);
        auto &reg = sim::metrics::Registry::global();
        for (std::size_t i = 0; i < cfg.numMces; ++i) {
            const std::string tile =
                "sched.tile" + std::to_string(i);
            _mTileBwWait.push_back(&reg.counter(
                tile + ".bw_wait_cycles",
                "cycles this tile demanded fetch slots the arbiter "
                "granted elsewhere"));
            _mTileSlack.push_back(&reg.gauge(
                tile + ".slack",
                "replay bandwidth headroom under the tile's granted "
                "share (available/required - 1)"));
        }
    }
    for (std::size_t i = 0; i < cfg.numMces; ++i) {
        MceConfig mc = cfg.mce;
        mc.seed = cfg.mce.seed + i * 0x9E37u;
        _mces.push_back(std::make_unique<Mce>(
            "mce" + std::to_string(i), mc));
        _mces.back()->attachFaults(&_faults);
        _stats.addChild(_mces.back()->stats());
    }
    for (const auto &m : _mces) {
        _decoders.emplace_back(m->lattice());
        _clusterDecoders.emplace_back(m->lattice());
    }
    // Defect awareness: masked regions are open boundaries for the
    // global decoder.
    for (std::size_t i = 0; i < _mces.size(); ++i) {
        Mce *mce = _mces[i].get();
        auto predicate = [mce](std::size_t q) {
            return mce->maskTable().masked(q);
        };
        _decoders[i].setMaskPredicate(predicate);
        _clusterDecoders[i].setMaskPredicate(predicate);
    }
    if (streamingDecode()) {
        decode::StreamConfig sc;
        sc.windowRounds = _cfg.streamWindowRounds;
        sc.strideRounds = streamStride();
        sc.deadline = streamDeadlineFor(_cfg, sc.strideRounds);
        for (std::size_t i = 0; i < _mces.size(); ++i) {
            // The MCE stops accumulating its offline decode window:
            // every extracted round is handed to the streamer
            // instead, so nothing is double-decoded.
            _mces[i]->setWindowBuffering(false);
            _streamers.push_back(
                std::make_unique<decode::StreamingDecoder>(
                    _mces[i]->extractor(), sc));
            Mce *mce = _mces[i].get();
            _streamers.back()->setMaskPredicate(
                [mce](std::size_t q) {
                    return mce->maskTable().masked(q);
                });
        }
    }
    // Link-level retry counters, mirrored so the faults group is the
    // one-stop report a fault sweep reads.
    _faultStats.formula("network_retransmits",
                        "link-level retransmissions",
                        [this] { return _network.retransmits(); });
    _faultStats.formula("network_lost", "packets dropped in flight",
                        [this] { return _network.lostPackets(); });
    _faultStats.formula("network_corrupted",
                        "packets rejected by CRC",
                        [this] {
                            return _network.corruptedPackets();
                        });
    _faultStats.formula("network_failures",
                        "packets past the link retry budget",
                        [this] {
                            return _network.deliveryFailures();
                        });
    _faultStats.formula("network_overhead_bytes",
                        "CRC/ACK protocol bytes",
                        [this] {
                            return _network.protocolOverheadBytes();
                        });
    _stats.addChild(_faultStats);
    // The whole stat tree (bus categories, per-MCE groups, network,
    // faults) becomes visible through the global metrics registry:
    // metricsSnapshot() reports "master.*" rows alongside the
    // registry's own counters.
    sim::metrics::Registry::global().attachGroup(_stats);
}

MasterController::~MasterController()
{
    sim::metrics::Registry::global().detachGroup(_stats);
}

std::size_t
MasterController::decodeWindow() const
{
    return _cfg.decodeWindowRounds ? _cfg.decodeWindowRounds
                                   : _cfg.mce.distance;
}

std::size_t
MasterController::streamStride() const
{
    if (_cfg.streamStrideRounds)
        return _cfg.streamStrideRounds;
    return std::max<std::size_t>(1, _cfg.streamWindowRounds / 2);
}

void
MasterController::sendOnBus(std::size_t mce_idx, std::size_t bytes,
                            sim::Scalar &category)
{
    category += double(bytes);
    PacketTiming timing = _network.send(mce_idx, bytes);
    // The link-level ARQ gives up after its retry budget; the master
    // then re-issues the whole packet (a supervisor retransmission)
    // a bounded number of times before abandoning delivery to the
    // out-of-band slow path.
    for (std::size_t esc = 0;
         !timing.delivered && esc < maxBusEscalations; ++esc) {
        ++_busEscalations;
        category += double(bytes);
        timing = _network.send(mce_idx, bytes);
    }
    if (!timing.delivered) {
        ++_packetsAbandoned;
        sim::warn("abandoning %zu-byte packet to MCE %zu after %zu "
                  "supervisor re-issues",
                  bytes, mce_idx, maxBusEscalations);
    }
}

void
MasterController::dispatch(const isa::LogicalInstr &instr)
{
    const std::size_t target = instr.operand % _mces.size();
    isa::LogicalInstr local = instr;
    local.operand = std::uint16_t(instr.operand / _mces.size());
    if (instr.opcode == isa::LogicalOpcode::SyncToken) {
        sendOnBus(target, tech::logicalInstrBytes, _bytesSync);
        return;
    }
    sendOnBus(target, tech::logicalInstrBytes, _bytesLogical);
    _mces[target]->executeLogical(local);
}

void
MasterController::dispatchTrace(const isa::LogicalTrace &trace)
{
    for (const auto &instr : trace)
        dispatch(instr);
}

ICacheAccess
MasterController::dispatchBlock(std::size_t mce_idx,
                                std::uint32_t block_id,
                                const isa::LogicalTrace &body)
{
    const ICacheAccess access =
        _mces.at(mce_idx)->executeBlock(block_id, body);
    sendOnBus(mce_idx, access.bytesFetched, _bytesCache);
    return access;
}

void
MasterController::broadcastSync()
{
    for (std::size_t i = 0; i < _mces.size(); ++i)
        sendOnBus(i, tech::logicalInstrBytes, _bytesSync);
}

int
MasterController::transferLogicalQubit(std::size_t src_mce,
                                       int src_id,
                                       std::size_t dst_mce,
                                       qecc::Coord dst_anchor)
{
    QUEST_ASSERT(src_mce < _mces.size() && dst_mce < _mces.size(),
                 "transfer between unknown MCEs %zu -> %zu",
                 src_mce, dst_mce);
    QUEST_ASSERT(src_mce != dst_mce,
                 "intra-MCE moves use mask instructions, not "
                 "transfers");

    // Destination defects first: the channel needs both endpoints.
    const int dst_id = _mces[dst_mce]->defineLogicalQubit(dst_anchor);

    // Channel setup + Bell measurement + Pauli fix-up commands to
    // both endpoints (4 logical packets), plus a sync token each.
    constexpr std::size_t transfer_packets = 4;
    for (std::size_t ep : { src_mce, dst_mce }) {
        sendOnBus(ep, transfer_packets * tech::logicalInstrBytes,
                  _bytesLogical);
        sendOnBus(ep, tech::logicalInstrBytes, _bytesSync);
    }

    // One code distance of rounds completes the fault-tolerant
    // hand-off; every tile keeps error-correcting meanwhile.
    runRounds(_cfg.mce.distance);

    _mces[src_mce]->releaseLogicalQubit(src_id);
    return dst_id;
}

void
MasterController::injectRoundFaults()
{
    for (std::size_t i = 0; i < _mces.size(); ++i) {
        if (!_mces[i]->hung()
            && _faults.fire(sim::FaultSite::MceHang)) {
            _mces[i]->wedge();
            ++_hangsInjected;
        }
        if (_faults.fire(sim::FaultSite::MicrocodeSeu)) {
            _mces[i]->microcodeStore().flipRandomBit(
                _faults.rng(sim::FaultSite::MicrocodeSeu));
            ++_seuInjected;
        }
    }
}

const ArbitrationResult &
MasterController::lastArbitration() const
{
    QUEST_ASSERT(_arbValid,
                 "no arbitration has run (sharedFetchBandwidth off "
                 "or no rounds stepped)");
    return _lastArbitration;
}

void
MasterController::arbitrateRound()
{
    QUEST_TRACE_SCOPE("master", "arbitrate");
    // Fresh oracles each round: mask changes and quarantines reshape
    // the per-tile programs, and a wedged engine demands nothing.
    std::vector<const verify::DependencyOracle *> oracles;
    std::vector<std::uint8_t> active;
    oracles.reserve(_mces.size());
    active.reserve(_mces.size());
    for (const auto &m : _mces) {
        oracles.push_back(&m->dependencyOracle());
        active.push_back(m->hung() ? 0 : 1);
    }
    _lastArbitration = _arbiter->arbitrate(
        oracles, active, _cfg.mce.scheduling,
        _cfg.sharedFetchBandwidth, _cfg.arbiterPolicy, 1);
    _arbValid = true;

    // Per-tile contention export: bandwidth-wait cycles, plus the
    // budget-pass slack math scaled by the share of fetch slots the
    // arbiter actually granted this tile.
    std::size_t total_slots = 0;
    for (const TileSchedule &t : _lastArbitration.tiles)
        total_slots += t.slotsFetched;
    const tech::JJMemoryModel mem;
    for (std::size_t i = 0; i < _mces.size(); ++i) {
        const TileSchedule &t = _lastArbitration.tiles[i];
        *_mTileBwWait[i] += t.stalls.bandwidthWait;
        if (!active[i] || total_slots == 0)
            continue;
        const Mce &m = *_mces[i];
        const auto &spec =
            qecc::protocolSpec(m.config().protocol);
        const std::size_t uop_bits =
            m.config().microcodeDesign == MicrocodeDesign::Ram
            ? isa::ramUopBits(spec.opcodeCount,
                              m.lattice().numQubits())
            : isa::fifoUopBits(spec.opcodeCount);
        const double round_seconds =
            sim::ticksToSeconds(spec.roundDuration(
                tech::gateLatencies(m.config().technology)));
        const double required =
            double(m.lattice().numQubits())
            * double(spec.uopsPerQubit);
        const double share =
            double(t.slotsFetched) / double(total_slots);
        const double available =
            mem.uopsPerSecond(m.config().memoryConfig, uop_bits)
            * round_seconds * share;
        _mTileSlack[i]->set(
            required > 0 ? available / required - 1.0 : 0.0);
    }
}

void
MasterController::stepRound()
{
    QUEST_TRACE_SCOPE("master", "step_round");
    if (_faults.enabled())
        injectRoundFaults();
    for (std::size_t i = 0; i < _mces.size(); ++i) {
        Mce &m = *_mces[i];
        const std::size_t before = m.roundsRun();
        const qecc::SyndromeRound &round = m.runQeccRound();
        // A wedged engine extracts nothing (roundsRun stalls); the
        // stale round it returns must not enter the stream.
        if (streamingDecode() && m.roundsRun() > before) {
            if (auto commit = _streamers[i]->pushRound(round))
                commitStream(i, *commit);
        }
    }
    if (arbitrating())
        arbitrateRound();
    ++_roundsRun;
    ++_roundsSinceDecode;
    if (_cfg.heartbeatIntervalRounds
        && _roundsRun % _cfg.heartbeatIntervalRounds == 0)
        heartbeatNow();
    if (_cfg.scrubIntervalRounds
        && _roundsRun % _cfg.scrubIntervalRounds == 0)
        scrubNow();
    // Streaming windows commit on their own cadence inside
    // pushRound; the offline collect-then-decode trigger stays off.
    if (!streamingDecode() && _roundsSinceDecode >= decodeWindow())
        decodeNow();
}

void
MasterController::heartbeatNow()
{
    QUEST_TRACE_SCOPE("master", "heartbeat");
    for (std::size_t i = 0; i < _mces.size(); ++i) {
        ++_heartbeats;
        sendOnBus(i, heartbeatBytes, _bytesSync);
        if (_mces[i]->hung()) {
            // No response: the engine is wedged.
            ++_heartbeatsMissed;
            if (++_missedHeartbeats[i]
                >= _cfg.watchdogMissThreshold)
                quarantineAndResync(i);
            continue;
        }
        _missedHeartbeats[i] = 0;
        // Healthy engines answer with a status token.
        sendOnBus(i, heartbeatBytes, _bytesSync);
    }
}

void
MasterController::quarantineAndResync(std::size_t mce_idx)
{
    ++_quarantines;
    _missedHeartbeats[mce_idx] = 0;
    Mce &m = *_mces[mce_idx];
    // Quarantine: stop trusting the tile's state, re-upload its
    // full microcode image, reset the engine, then decode whatever
    // syndrome accumulated while it was wedged before resuming.
    sendOnBus(mce_idx, m.microcodeStore().imageBytes(), _bytesScrub);
    m.recover();
    decodeTile(mce_idx);
    ++_resumes;
}

void
MasterController::scrubNow()
{
    QUEST_TRACE_SCOPE("master", "scrub");
    for (std::size_t i = 0; i < _mces.size(); ++i) {
        sendOnBus(i, scrubPollBytes, _bytesScrub);
        MicrocodeStore &store = _mces[i]->microcodeStore();
        if (store.parityErrorWords() == 0)
            continue; // parity-clean (even-flip corruption is silent)
        _seuDetected += double(store.parityErrorWords());
        _seuSilent += double(store.silentBits());
        sendOnBus(i, store.imageBytes(), _bytesScrub);
        store.repair();
        ++_scrubs;
    }
}

void
MasterController::commitStream(std::size_t mce_idx,
                               const decode::StreamCommit &commit)
{
    // The syndrome bus carries each residual event once, in the
    // window that first forwards it past the local LUT stage.
    if (commit.forwardedEvents > 0)
        sendOnBus(mce_idx,
                  commit.forwardedEvents
                      * decode::detectionEventBytes,
                  _bytesSyndrome);
    if (commit.fallback) {
        ++_decoderOverruns;
        ++_decoderFallbacks;
        _mces[mce_idx]->stretchNoise(commit.stretch, streamStride());
    }
    if (commit.correction.weight() > 0)
        sendOnBus(mce_idx,
                  commit.correction.weight() * correctionEntryBytes,
                  _bytesCorrections);
    _mces[mce_idx]->applyCorrection(commit.correction);
}

void
MasterController::flushStreamTile(std::size_t mce_idx)
{
    QUEST_TRACE_SCOPE("master", "stream_flush");
    if (auto commit = _streamers[mce_idx]->finish())
        commitStream(mce_idx, *commit);
}

void
MasterController::decodeTile(std::size_t mce_idx)
{
    if (streamingDecode()) {
        flushStreamTile(mce_idx);
        return;
    }
    QUEST_TRACE_SCOPE("master", "decode_tile");
    const decode::DetectionEvents residual =
        _mces[mce_idx]->collectResidualEvents();
    if (residual.total() == 0)
        return;
    sendOnBus(mce_idx, residual.total() * decode::detectionEventBytes,
              _bytesSyndrome);

    bool use_cluster =
        _cfg.globalDecoder == GlobalDecoderKind::Cluster;
    if (!use_cluster && _cfg.modelDecodeDeadline) {
        const bool injected =
            _faults.fire(sim::FaultSite::DecoderOverrun);
        const bool analytic = _deadline.overruns(residual.total());
        if (injected || analytic) {
            // The exact matcher would miss the window: degrade to
            // the union-find cluster decoder for this window, and
            // charge the lateness as stretched noise on the tile.
            ++_decoderOverruns;
            ++_decoderFallbacks;
            use_cluster = true;
            _mces[mce_idx]->stretchNoise(
                _deadline.stretch(residual.total()),
                decodeWindow());
        }
    }
    const decode::Correction corr = use_cluster
        ? _clusterDecoders[mce_idx].decode(residual)
        : _decoders[mce_idx].decode(residual);
    if (corr.weight() > 0)
        sendOnBus(mce_idx, corr.weight() * correctionEntryBytes,
                  _bytesCorrections);
    _mces[mce_idx]->applyCorrection(corr);
}

void
MasterController::decodeNow()
{
    for (std::size_t i = 0; i < _mces.size(); ++i)
        decodeTile(i);
    _roundsSinceDecode = 0;
}

double
MasterController::totalBusBytes() const
{
    return _bytesLogical.value() + _bytesSync.value()
        + _bytesSyndrome.value() + _bytesCorrections.value()
        + _bytesCache.value() + _bytesScrub.value();
}

double
MasterController::baselineEquivalentBytes() const
{
    double bytes = 0.0;
    for (const auto &m : _mces) {
        const auto &spec = qecc::protocolSpec(m->config().protocol);
        bytes += double(m->roundsRun()) * double(spec.depth())
            * double(m->lattice().numQubits())
            * double(tech::physicalInstrBytes);
    }
    return bytes;
}

} // namespace quest::core
