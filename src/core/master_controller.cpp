#include "master_controller.hpp"

#include "sim/logging.hpp"
#include "tech/parameters.hpp"

namespace quest::core {

namespace {

NetworkConfig
networkConfigFor(const MasterConfig &cfg)
{
    NetworkConfig net = cfg.network;
    net.mceCount = cfg.numMces;
    return net;
}

} // namespace

MasterController::MasterController(const MasterConfig &cfg)
    : _cfg(cfg),
      _stats("master"),
      _network(networkConfigFor(cfg), _stats),
      _bytesLogical(_stats.scalar(
          "bus_bytes_logical", "logical instruction packets (bytes)")),
      _bytesSync(_stats.scalar("bus_bytes_sync",
                               "synchronization tokens (bytes)")),
      _bytesSyndrome(_stats.scalar(
          "bus_bytes_syndrome", "residual syndrome uploads (bytes)")),
      _bytesCorrections(_stats.scalar(
          "bus_bytes_corrections", "correction downloads (bytes)")),
      _bytesCache(_stats.scalar(
          "bus_bytes_cache",
          "distillation block fills and replay tokens (bytes)"))
{
    QUEST_ASSERT(cfg.numMces > 0, "need at least one MCE");
    for (std::size_t i = 0; i < cfg.numMces; ++i) {
        MceConfig mc = cfg.mce;
        mc.seed = cfg.mce.seed + i * 0x9E37u;
        _mces.push_back(std::make_unique<Mce>(
            "mce" + std::to_string(i), mc));
        _stats.addChild(_mces.back()->stats());
    }
    for (const auto &m : _mces) {
        _decoders.emplace_back(m->lattice());
        _clusterDecoders.emplace_back(m->lattice());
    }
    // Defect awareness: masked regions are open boundaries for the
    // global decoder.
    for (std::size_t i = 0; i < _mces.size(); ++i) {
        Mce *mce = _mces[i].get();
        auto predicate = [mce](std::size_t q) {
            return mce->maskTable().masked(q);
        };
        _decoders[i].setMaskPredicate(predicate);
        _clusterDecoders[i].setMaskPredicate(predicate);
    }
}

std::size_t
MasterController::decodeWindow() const
{
    return _cfg.decodeWindowRounds ? _cfg.decodeWindowRounds
                                   : _cfg.mce.distance;
}

void
MasterController::dispatch(const isa::LogicalInstr &instr)
{
    const std::size_t target = instr.operand % _mces.size();
    isa::LogicalInstr local = instr;
    local.operand = std::uint16_t(instr.operand / _mces.size());
    if (instr.opcode == isa::LogicalOpcode::SyncToken) {
        _bytesSync += double(tech::logicalInstrBytes);
        _network.send(target, tech::logicalInstrBytes);
        return;
    }
    _bytesLogical += double(tech::logicalInstrBytes);
    _network.send(target, tech::logicalInstrBytes);
    _mces[target]->executeLogical(local);
}

void
MasterController::dispatchTrace(const isa::LogicalTrace &trace)
{
    for (const auto &instr : trace)
        dispatch(instr);
}

ICacheAccess
MasterController::dispatchBlock(std::size_t mce_idx,
                                std::uint32_t block_id,
                                const isa::LogicalTrace &body)
{
    const ICacheAccess access =
        _mces.at(mce_idx)->executeBlock(block_id, body);
    _bytesCache += double(access.bytesFetched);
    _network.send(mce_idx, access.bytesFetched);
    return access;
}

void
MasterController::broadcastSync()
{
    _bytesSync += double(_mces.size() * tech::logicalInstrBytes);
    for (std::size_t i = 0; i < _mces.size(); ++i)
        _network.send(i, tech::logicalInstrBytes);
}

int
MasterController::transferLogicalQubit(std::size_t src_mce,
                                       int src_id,
                                       std::size_t dst_mce,
                                       qecc::Coord dst_anchor)
{
    QUEST_ASSERT(src_mce < _mces.size() && dst_mce < _mces.size(),
                 "transfer between unknown MCEs %zu -> %zu",
                 src_mce, dst_mce);
    QUEST_ASSERT(src_mce != dst_mce,
                 "intra-MCE moves use mask instructions, not "
                 "transfers");

    // Destination defects first: the channel needs both endpoints.
    const int dst_id = _mces[dst_mce]->defineLogicalQubit(dst_anchor);

    // Channel setup + Bell measurement + Pauli fix-up commands to
    // both endpoints (4 logical packets), plus a sync token each.
    constexpr std::size_t transfer_packets = 4;
    for (std::size_t ep : { src_mce, dst_mce }) {
        const std::size_t bytes =
            transfer_packets * tech::logicalInstrBytes;
        _bytesLogical += double(bytes);
        _network.send(ep, bytes);
        _bytesSync += double(tech::logicalInstrBytes);
        _network.send(ep, tech::logicalInstrBytes);
    }

    // One code distance of rounds completes the fault-tolerant
    // hand-off; every tile keeps error-correcting meanwhile.
    runRounds(_cfg.mce.distance);

    _mces[src_mce]->releaseLogicalQubit(src_id);
    return dst_id;
}

void
MasterController::stepRound()
{
    for (auto &m : _mces)
        m->runQeccRound();
    ++_roundsRun;
    ++_roundsSinceDecode;
    if (_roundsSinceDecode >= decodeWindow())
        decodeNow();
}

void
MasterController::decodeNow()
{
    for (std::size_t i = 0; i < _mces.size(); ++i) {
        const decode::DetectionEvents residual =
            _mces[i]->collectResidualEvents();
        _bytesSyndrome += double(residual.total()
                                 * decode::detectionEventBytes);
        if (residual.total() == 0)
            continue;
        _network.send(i, residual.total()
                             * decode::detectionEventBytes);
        const decode::Correction corr =
            _cfg.globalDecoder == GlobalDecoderKind::Mwpm
                ? _decoders[i].decode(residual)
                : _clusterDecoders[i].decode(residual);
        _bytesCorrections += double(corr.weight()
                                    * correctionEntryBytes);
        if (corr.weight() > 0)
            _network.send(i, corr.weight() * correctionEntryBytes);
        _mces[i]->applyCorrection(corr);
    }
    _roundsSinceDecode = 0;
}

double
MasterController::totalBusBytes() const
{
    return _bytesLogical.value() + _bytesSync.value()
        + _bytesSyndrome.value() + _bytesCorrections.value()
        + _bytesCache.value();
}

double
MasterController::baselineEquivalentBytes() const
{
    double bytes = 0.0;
    for (const auto &m : _mces) {
        const auto &spec = qecc::protocolSpec(m->config().protocol);
        bytes += double(m->roundsRun()) * double(spec.depth())
            * double(m->lattice().numQubits())
            * double(tech::physicalInstrBytes);
    }
    return bytes;
}

} // namespace quest::core
