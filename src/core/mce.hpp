/**
 * @file
 * Microcoded Control Engine (paper Section 4, Figures 7-8).
 *
 * An MCE owns a tiled subsection of the quantum substrate and is
 * solely responsible for its QECC instruction delivery: the
 * microcode pipeline replays the QECC-uop program every round with
 * no master-controller involvement; the mask table suppresses
 * syndrome generation where logical qubits live; the instruction
 * pipeline decodes 2-byte logical instructions into transverse
 * physical uops or mask updates; the error decoder pipeline runs the
 * local LUT decode and forwards residual detection events upward.
 *
 * The MCE here is cycle-faithful at QECC-round granularity: every
 * round streams one micro-op per qubit per sub-cycle through the
 * execution unit's latch/master-clock model, evolves a Pauli frame
 * under the configured noise, and records real syndromes.
 */

#ifndef QUEST_CORE_MCE_HPP
#define QUEST_CORE_MCE_HPP

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "decode/detection.hpp"
#include "decode/lut_decoder.hpp"
#include "exec_unit.hpp"
#include "icache.hpp"
#include "isa/instructions.hpp"
#include "isa/trace.hpp"
#include "mask_table.hpp"
#include "microcode.hpp"
#include "qecc/extractor.hpp"
#include "qecc/logical_mask.hpp"
#include "quantum/error_model.hpp"
#include "scheduler.hpp"
#include "sim/metrics.hpp"
#include "sim/stats.hpp"

namespace quest::sim {
class FaultInjector;
}

namespace quest::core {

/** Configuration of one MCE tile. */
struct MceConfig
{
    std::size_t distance = 3;  ///< code distance of the tile
    /** Tile dimensions; 0 means the (2d-1)x(2d-1) default. */
    std::size_t latticeRows = 0;
    std::size_t latticeCols = 0;

    qecc::Protocol protocol = qecc::Protocol::Steane;
    tech::Technology technology = tech::Technology::ProjectedD;
    MicrocodeDesign microcodeDesign = MicrocodeDesign::UnitCell;
    tech::MemoryConfig memoryConfig{4, 1024};
    MaskLayout maskLayout = MaskLayout::Full;

    quantum::ErrorRates errorRates = quantum::ErrorRates::none();
    std::size_t icacheCapacity = 1024; ///< instructions; 0 disables
    std::uint64_t seed = 1;

    /**
     * Pipeline timing model for the per-round microcode replay.
     * Out-of-order issue changes *when* uops fire (the issue plan),
     * never *what* retires: functional effects always apply in
     * program order, so every architectural observable is
     * bit-identical between modes.
     */
    SchedulingMode scheduling = SchedulingMode::InOrder;
    /** Width/capacity knobs of the dynamic pipeline (OoO only). */
    SchedulerConfig sched;

    /** Run the installed pre-flight verifier over the tile's
     *  artifacts at construction (see setPreflightVerifier). */
    bool verifyOnLoad = false;
};

class Mce;

/**
 * Pre-flight verification hook. The static verifier (src/verify)
 * sits above this library in the link order, so the load-path gate
 * is dependency-injected: verify::installPreflightGate() registers
 * a function here, and any Mce constructed with
 * `MceConfig::verifyOnLoad` runs it before accepting the tile. The
 * hook must raise sim::SimError to reject the artifacts.
 */
using PreflightVerifier = void (*)(const Mce &mce);

/** Install (or clear, with nullptr) the pre-flight hook. */
void setPreflightVerifier(PreflightVerifier fn);

/** The installed hook, or nullptr. */
PreflightVerifier preflightVerifier();

/** One Microcoded Control Engine. */
class Mce
{
  public:
    Mce(std::string name, const MceConfig &cfg);

    const std::string &name() const { return _name; }
    const MceConfig &config() const { return _cfg; }
    const qecc::Lattice &lattice() const { return *_lattice; }

    /** The canonical (unmasked) QECC microcode program this tile
     *  replays — what the pre-flight verifier inspects. */
    const qecc::RoundSchedule &baseSchedule() const
    {
        return *_baseSchedule;
    }

    /** The mask-filtered program actually replayed each round (what
     *  the dynamic scheduler and the arbiter plan against). */
    const qecc::RoundSchedule &maskedSchedule() const
    {
        return *_maskedSchedule;
    }

    /**
     * Qubit-dependence oracle of the masked program — lazily built
     * (and rebuilt after every mask change). Available in either
     * scheduling mode; the OoO replay path and the master's
     * bandwidth arbiter consume it.
     */
    const verify::DependencyOracle &dependencyOracle();

    /** The issue plan the last OoO round replayed. Asserts that at
     *  least one out-of-order round has run. */
    const TileSchedule &lastIssuePlan() const;

    quantum::PauliFrame &frame() { return _frame; }
    LogicalInstructionCache &icache() { return _icache; }
    MaskTable &maskTable() { return _mask; }
    sim::StatGroup &stats() { return _stats; }

    /** @name Logical qubit management (mask instructions). */
    ///@{

    /**
     * Create a double-defect logical qubit anchored at `anchor`.
     * @return the logical qubit id used by later instructions.
     */
    int defineLogicalQubit(qecc::Coord anchor);

    /** Remove a logical qubit and re-enable QECC on its footprint. */
    void releaseLogicalQubit(int id);

    std::size_t logicalQubitCount() const { return _logical.size(); }
    ///@}

    /**
     * Execute one 2-byte logical instruction (the instruction
     * pipeline path, steps 4-6 of Figure 8a). Transverse
     * instructions act across the operand logical qubit's footprint;
     * mask instructions reshape its boundary.
     */
    void executeLogical(const isa::LogicalInstr &instr);

    /** Run a block of logical instructions through the icache. */
    ICacheAccess executeBlock(std::uint32_t block_id,
                              const isa::LogicalTrace &body);

    /**
     * Execute a braided logical CNOT (Section 5.1, Figure 12c):
     * drag the control qubit's defect A around the target qubit's
     * defect A along a planned loop, one mask update plus d QECC
     * rounds per step. The moving defect is temporarily contracted
     * to thread the channel between the target's defects (a
     * distance/routing trade the defect encoding permits).
     *
     * @return the number of braid steps executed, or 0 when no
     *         valid loop exists on this tile (the instruction is
     *         dropped with a warning, like any other infeasible
     *         mask instruction).
     */
    std::size_t braidCnot(int control_id, int target_id);

    /**
     * Run one full QECC round: the microcode pipeline streams a uop
     * per qubit per sub-cycle (QECC program or masked), the
     * execution unit fires, the Pauli frame evolves under noise and
     * the ancilla syndromes are recorded.
     */
    const qecc::SyndromeRound &runQeccRound();

    /** Rounds executed so far. */
    std::size_t roundsRun() const { return _roundsRun; }

    /**
     * Drain the accumulated syndrome window into detection events
     * and run the local LUT decode. Locally-resolved corrections go
     * into the correction ledger; the residual events are returned
     * for the master controller's global decoder.
     */
    decode::DetectionEvents collectResidualEvents();

    /**
     * Streaming hand-off: when buffering is off, extracted rounds
     * are not accumulated into the offline decode window -- the
     * master feeds each round to a decode::StreamingDecoder as it is
     * extracted instead, and collectResidualEvents() drains nothing.
     */
    void setWindowBuffering(bool on) { _windowBuffering = on; }

    /** The syndrome extractor replaying this tile's microcode. */
    const qecc::SyndromeExtractor &extractor() const
    {
        return *_extractor;
    }

    /**
     * Record a global-decoder correction. Following the paper
     * (Appendix A.2), corrections are not executed on the qubits:
     * they accumulate in a classical Pauli ledger that is folded in
     * when a qubit is finally measured. This keeps syndrome
     * differencing consistent across decode windows.
     */
    void applyCorrection(const decode::Correction &corr);

    /** The classical correction ledger. */
    const quantum::PauliFrame &correctionLedger() const
    {
        return _ledger;
    }

    /**
     * Residual error weight after folding the ledger into the live
     * frame (0 means every tracked error has been cancelled).
     */
    std::size_t residualErrorWeight() const;

    /** @name Accounting. */
    ///@{
    double microcodeBitsStreamed() const
    {
        return _microcodeBits.value();
    }
    double qeccUopsIssued() const { return _qeccUops.value(); }
    double logicalUopsIssued() const { return _logicalUops.value(); }
    double eventsResolvedLocally() const
    {
        return _eventsLocal.value();
    }
    double seuUopErrors() const { return _seuUopErrors.value(); }
    ///@}

    /** @name Classical resilience (fault injection hooks). */
    ///@{

    /**
     * Attach the classical fault source. SEU-corrupted microcode
     * words mis-steer one uop per replay only while an injector is
     * attached (its placement stream picks the victim qubit).
     */
    void attachFaults(sim::FaultInjector *faults)
    {
        _faults = faults;
    }

    /** The parity-protected microcode memory image. */
    MicrocodeStore &microcodeStore() { return _microcodeStore; }
    const MicrocodeStore &microcodeStore() const
    {
        return _microcodeStore;
    }

    /**
     * Inject a control hang: the engine stops streaming microcode
     * and answering heartbeats; its tile idles uncorrected until
     * the master's watchdog quarantines and recovers it.
     */
    void wedge() { _hung = true; }

    bool hung() const { return _hung; }

    /**
     * Watchdog recovery: clear the hang and rewrite the microcode
     * image (the master re-synced it over the bus).
     */
    void
    recover()
    {
        _hung = false;
        _microcodeStore.repair();
    }

    /**
     * Inflate this tile's noise by `factor` for the next `rounds`
     * QECC rounds -- the host::delivery stretch model applied to a
     * tile whose global correction arrived after the decode
     * deadline.
     */
    void stretchNoise(double factor, std::size_t rounds);
    ///@}

  private:
    std::string _name;
    MceConfig _cfg;

    std::unique_ptr<qecc::Lattice> _lattice;
    std::unique_ptr<qecc::RoundSchedule> _baseSchedule;
    std::unique_ptr<qecc::RoundSchedule> _maskedSchedule;
    std::unique_ptr<qecc::SyndromeExtractor> _extractor;

    /** Dependence oracle + issue plan for the masked program;
     *  invalidated by every mask change, rebuilt on demand. */
    std::unique_ptr<verify::DependencyOracle> _oracle;
    std::unique_ptr<DynamicScheduler> _scheduler;
    TileSchedule _issuePlan;
    bool _planValid = false;

    sim::Rng _rng;
    quantum::PauliFrame _frame;
    quantum::PauliFrame _ledger; ///< decoded-but-unexecuted corrections
    quantum::ErrorChannel _channel;
    MicrocodeStore _microcodeStore;
    sim::FaultInjector *_faults = nullptr;
    bool _hung = false;
    double _stretchFactor = 1.0;
    std::size_t _stretchRounds = 0;

    sim::StatGroup _stats;
    MaskTable _mask;
    QuantumExecutionUnit _execUnit;
    LogicalInstructionCache _icache;
    decode::LutDecoder _lutDecoder;

    std::map<int, qecc::LogicalQubit> _logical;
    int _nextLogicalId = 0;

    std::size_t _roundsRun = 0;
    bool _windowBuffering = true;
    std::vector<qecc::SyndromeRound> _window;
    std::optional<qecc::SyndromeRound> _windowBaseline;
    std::size_t _windowFirstRound = 0;
    qecc::SyndromeRound _lastRound;

    sim::Scalar &_microcodeBits;
    sim::Scalar &_qeccUops;
    sim::Scalar &_logicalUops;
    sim::Scalar &_eventsLocal;
    sim::Scalar &_roundsStat;
    sim::Scalar &_seuUopErrors;

    // Registry counters bound at construction; never function-local
    // statics (those outlive registry resets -- see the
    // registry-lifetime regression test).
    sim::metrics::Counter &_mReplayRounds;
    sim::metrics::Counter &_mReplayUops;
    sim::metrics::Counter &_mReplayUcodeBits;
    sim::metrics::Counter &_mReplayHungRounds;
    sim::metrics::Counter &_mReplaySeuErrors;
    sim::metrics::Counter &_mLogicalInstrs;
    sim::metrics::Counter &_mSchedRounds;
    sim::metrics::Counter &_mSchedCycles;

    /** Replay one round through the planned OoO issue schedule. */
    std::uint64_t replayOutOfOrder(std::size_t uop_bits);

    /** Rebuild the mask-filtered schedule after mask changes. */
    void rebuildMaskedSchedule();

    /**
     * Recompute the mask table from every live logical qubit, then
     * rebuild the schedule. Overlapping footprints (e.g. a braiding
     * defect passing another qubit's perimeter) make incremental
     * unmasking unsound, so all mask mutations funnel through here.
     */
    void rebuildMask();

    /** Apply a transverse gate across a logical footprint. */
    void applyTransverse(isa::LogicalOpcode op,
                         const qecc::LogicalQubit &lq);
};

} // namespace quest::core

#endif // QUEST_CORE_MCE_HPP
