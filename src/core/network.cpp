#include "network.hpp"

#include <algorithm>
#include <cmath>

#include "sim/fault_injector.hpp"
#include "sim/logging.hpp"

namespace quest::core {

namespace {

std::size_t
treeDepth(const NetworkConfig &cfg)
{
    QUEST_ASSERT(cfg.mceCount > 0, "network needs at least one MCE");
    // A single-MCE system is a point-to-point wire; only multi-leaf
    // trees need a branching radix.
    QUEST_ASSERT(cfg.radix >= 2 || cfg.mceCount == 1,
                 "tree radix must be at least 2 for %zu MCEs",
                 cfg.mceCount);
    QUEST_ASSERT(cfg.linkBytesPerTick > 0, "links need bandwidth");

    // Depth of the radix-k tree covering all leaves.
    std::size_t depth = 1;
    std::size_t reach = std::max<std::size_t>(cfg.radix, 2);
    while (reach < cfg.mceCount) {
        reach *= cfg.radix;
        ++depth;
    }
    return depth;
}

/**
 * Upper bound of the latency histogram: the worst-case retransmit
 * path (a generously sized packet retried to the full budget with
 * every backoff step) rather than a fixed 1e6 ps that long retry
 * chains would silently saturate.
 */
double
latencyHistMax(const NetworkConfig &cfg, std::size_t depth)
{
    constexpr double worst_packet_bytes = 4096.0;
    const double hops = double(depth + 1);
    const double attempt = 2.0 * hops * double(cfg.hopLatency)
        + (worst_packet_bytes + double(cfg.crcBytes)
           + double(cfg.ackBytes))
            / cfg.linkBytesPerTick;
    double backoff = 0.0;
    for (std::size_t k = 0; k < cfg.retryLimit; ++k)
        backoff += double(cfg.retryBackoff << k);
    const double worst =
        double(cfg.retryLimit + 1) * attempt + backoff;
    return std::max(1e6, worst);
}

} // namespace

PacketNetwork::PacketNetwork(const NetworkConfig &cfg,
                             sim::StatGroup &parent)
    : _cfg(cfg),
      _depth(treeDepth(cfg)),
      _stats("network"),
      _bytes(_stats.scalar("bytes", "bytes carried by the network")),
      _packets(_stats.scalar("packets", "packets delivered")),
      _latencyTotal(_stats.scalar("latency_ticks",
                                  "sum of packet latencies")),
      _retransmits(_stats.scalar("retransmits",
                                 "link-level retransmissions")),
      _lost(_stats.scalar("packets_lost",
                          "packets dropped in flight")),
      _corrupted(_stats.scalar("packets_corrupted",
                               "packets rejected by CRC")),
      _failures(_stats.scalar(
          "delivery_failures",
          "packets abandoned after the retry budget")),
      _overheadBytes(_stats.scalar(
          "protocol_overhead_bytes",
          "CRC trailers and ACK/NACK tokens (bytes)")),
      _latencyHist(_stats.histogram("latency", "packet latency (ps)",
                                    0, latencyHistMax(cfg, _depth),
                                    32))
{
    parent.addChild(_stats);
}

void
PacketNetwork::attachFaults(sim::FaultInjector *faults)
{
    _faults = faults;
    // Jitter stream keyed off the injector seed (and nothing else):
    // a retransmitting run replays bit-for-bit under a fixed fault
    // seed, and two networks attached to differently-seeded
    // injectors desynchronise their retry storms.
    if (faults != nullptr)
        _jitterRng.seed(sim::Rng::deriveSeed(
            faults->config().seed, 0xBACC0FFull));
}

std::size_t
PacketNetwork::hopsToMce(std::size_t mce_index) const
{
    QUEST_ASSERT(mce_index < _cfg.mceCount,
                 "MCE index %zu out of range", mce_index);
    // Balanced tree: every leaf is `depth` router hops from the
    // root plus the injection/ejection links.
    return _depth + 1;
}

PacketTiming
PacketNetwork::send(std::size_t mce_index, std::size_t bytes)
{
    QUEST_ASSERT(bytes > 0, "empty packet");
    PacketTiming timing;
    timing.hops = hopsToMce(mce_index);

    const auto serialization = [this](std::size_t b) {
        return sim::Tick(
            std::ceil(double(b) / _cfg.linkBytesPerTick));
    };
    const sim::Tick hop_time =
        sim::Tick(timing.hops) * _cfg.hopLatency;

    if (_faults == nullptr || !_faults->enabled()) {
        // Fault-free fast path: no CRC, no ACK, accounting identical
        // to the perfect-network model.
        timing.latency = hop_time + serialization(bytes);
        _bytes += double(bytes);
        ++_packets;
        _latencyTotal += double(timing.latency);
        _latencyHist.sample(double(timing.latency));
        return timing;
    }

    // CRC-protected packet with ACK/NACK and a bounded retry budget.
    const std::size_t wire_bytes = bytes + _cfg.crcBytes;
    timing.delivered = false;
    for (std::size_t attempt = 0; attempt <= _cfg.retryLimit;
         ++attempt) {
        timing.attempts = attempt + 1;
        if (attempt > 0) {
            ++_retransmits;
            // Exponential backoff before each retransmission, with
            // a deterministic jitter fraction so concurrent senders
            // that lost packets together do not retry in lockstep.
            // The draw is seeded (attachFaults), never wall clock.
            const sim::Tick base = _cfg.retryBackoff << (attempt - 1);
            sim::Tick wait = base;
            if (_cfg.retryJitter > 0.0) {
                const double j = _cfg.retryJitter;
                wait = sim::Tick(double(base)
                                 * (1.0 - j
                                    + j * _jitterRng.uniform()));
            }
            timing.latency += wait;
        }
        _bytes += double(wire_bytes);
        _overheadBytes += double(_cfg.crcBytes);
        timing.latency += hop_time + serialization(wire_bytes);

        if (_faults->fire(sim::FaultSite::NetworkLoss)) {
            // Dropped in flight: the sender times out waiting for
            // the ACK (one return trip) before retrying.
            ++_lost;
            timing.latency += hop_time;
            continue;
        }
        const bool corrupt =
            _faults->fire(sim::FaultSite::NetworkCorruption);
        // The receiver answers either way: ACK on a clean CRC, NACK
        // when the trailer flags corruption.
        _bytes += double(_cfg.ackBytes);
        _overheadBytes += double(_cfg.ackBytes);
        timing.latency += hop_time + serialization(_cfg.ackBytes);
        if (corrupt) {
            ++_corrupted;
            continue;
        }
        timing.delivered = true;
        break;
    }
    if (!timing.delivered)
        ++_failures;

    ++_packets;
    _latencyTotal += double(timing.latency);
    _latencyHist.sample(double(timing.latency));
    return timing;
}

double
PacketNetwork::meanLatencyTicks() const
{
    const double packets = _packets.value();
    return packets > 0 ? _latencyTotal.value() / packets : 0.0;
}

} // namespace quest::core
