#include "network.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace quest::core {

PacketNetwork::PacketNetwork(const NetworkConfig &cfg,
                             sim::StatGroup &parent)
    : _cfg(cfg),
      _stats("network"),
      _bytes(_stats.scalar("bytes", "bytes carried by the network")),
      _packets(_stats.scalar("packets", "packets delivered")),
      _latencyTotal(_stats.scalar("latency_ticks",
                                  "sum of packet latencies")),
      _latencyHist(_stats.histogram("latency", "packet latency (ps)",
                                    0, 1e6, 32))
{
    QUEST_ASSERT(cfg.mceCount > 0, "network needs at least one MCE");
    QUEST_ASSERT(cfg.radix >= 2, "tree radix must be at least 2");
    QUEST_ASSERT(cfg.linkBytesPerTick > 0, "links need bandwidth");

    // Depth of the radix-k tree covering all leaves.
    _depth = 1;
    std::size_t reach = cfg.radix;
    while (reach < cfg.mceCount) {
        reach *= cfg.radix;
        ++_depth;
    }
    parent.addChild(_stats);
}

std::size_t
PacketNetwork::hopsToMce(std::size_t mce_index) const
{
    QUEST_ASSERT(mce_index < _cfg.mceCount,
                 "MCE index %zu out of range", mce_index);
    // Balanced tree: every leaf is `depth` router hops from the
    // root plus the injection/ejection links.
    return _depth + 1;
}

PacketTiming
PacketNetwork::send(std::size_t mce_index, std::size_t bytes)
{
    QUEST_ASSERT(bytes > 0, "empty packet");
    PacketTiming timing;
    timing.hops = hopsToMce(mce_index);

    const auto serialization = sim::Tick(
        std::ceil(double(bytes) / _cfg.linkBytesPerTick));
    timing.latency =
        sim::Tick(timing.hops) * _cfg.hopLatency + serialization;

    _bytes += double(bytes);
    ++_packets;
    _latencyTotal += double(timing.latency);
    _latencyHist.sample(double(timing.latency));
    return timing;
}

double
PacketNetwork::meanLatencyTicks() const
{
    const double packets = _packets.value();
    return packets > 0 ? _latencyTotal.value() / packets : 0.0;
}

} // namespace quest::core
