/**
 * @file
 * Software-managed logical instruction cache (Section 5.3).
 *
 * QuEST decouples QECC from logical instruction delivery, which
 * makes non-deterministic latency acceptable for logical
 * instructions -- so they can be cached. Magic-state distillation
 * streams are recursive with deterministic control flow and bodies
 * of 100-200 instructions, so each MCE's instruction buffer doubles
 * as a software-managed cache keyed by block id: the master
 * controller sends a block once and afterwards replays it with a
 * single token instead of re-streaming the body, cutting the global
 * logical bandwidth by roughly the distillation ratio (three orders
 * of magnitude across the paper's workloads).
 */

#ifndef QUEST_CORE_ICACHE_HPP
#define QUEST_CORE_ICACHE_HPP

#include <cstdint>
#include <list>
#include <unordered_map>

#include "isa/trace.hpp"
#include "sim/metrics.hpp"
#include "sim/stats.hpp"

namespace quest::core {

/** Result of one cache access. */
struct ICacheAccess
{
    bool hit = false;
    std::size_t bytesFetched = 0;  ///< global-bus bytes this access
    std::size_t instructions = 0;  ///< instructions issued locally
};

/** Per-MCE software-managed logical instruction cache. */
class LogicalInstructionCache
{
  public:
    /**
     * @param capacity_instructions Total instructions the buffer can
     *        hold (0 disables caching: every access streams).
     */
    LogicalInstructionCache(std::size_t capacity_instructions,
                            sim::StatGroup &parent);

    std::size_t capacity() const { return _capacity; }
    bool enabled() const { return _capacity > 0; }

    /**
     * Execute a block through the cache. On a miss the block body is
     * charged to the global bus and installed (evicting
     * least-recently-used blocks as needed); on a hit only a 2-byte
     * replay token crosses the bus.
     */
    ICacheAccess execute(std::uint32_t block_id,
                         const isa::LogicalTrace &body);

    /** Instructions currently resident. */
    std::size_t residentInstructions() const { return _resident; }

    double hits() const { return _hits.value(); }
    double misses() const { return _misses.value(); }
    double busBytes() const { return _busBytes.value(); }

  private:
    std::size_t _capacity;
    std::size_t _resident = 0;

    /** LRU order: front == most recent. Values: block sizes. */
    std::list<std::pair<std::uint32_t, std::size_t>> _lru;

    /**
     * Determinism note: this unordered map is point-access only
     * (find / contains / erase / insert) -- eviction order and every
     * result-affecting decision come from `_lru`, so the map's
     * implementation-defined iteration order can never leak into
     * simulation results. Iterating it would break that contract;
     * tools/quest_lint (det-unordered-iteration) guards the rule.
     */
    std::unordered_map<std::uint32_t, decltype(_lru)::iterator> _index;

    sim::StatGroup _stats;
    sim::Scalar &_hits;
    sim::Scalar &_misses;
    sim::Scalar &_busBytes;

    // Constructor-bound registry counters (no function-local
    // statics; they outlive registry resets).
    sim::metrics::Counter &_mHits;
    sim::metrics::Counter &_mMisses;
    sim::metrics::Counter &_mBusBytes;

    void touch(std::uint32_t block_id);
    void evictUntilFits(std::size_t need);
};

/** Bytes of the replay token the master sends on a cache hit. */
inline constexpr std::size_t replayTokenBytes = 2;

} // namespace quest::core

#endif // QUEST_CORE_ICACHE_HPP
