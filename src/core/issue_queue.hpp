/**
 * @file
 * Issue queue and scoreboard for the dynamically scheduled MCE.
 *
 * The in-order microcode pipeline latches one uop per qubit per
 * sub-cycle and fires the master clock as a barrier: every sub-cycle
 * waits for the slowest waveform of the previous one (measurement is
 * 4 JJ cycles; a fetch-bound sub-cycle also rounds up to a whole
 * fetch burst). Out-of-order issue replaces the barrier with
 * dataflow: decoded uops enter a bounded issue queue, a scoreboard
 * tracks per-uop producer edges (the qubit touch chains computed by
 * verify::DependencyOracle), and each cycle the oldest ready uops
 * issue up to the issue width. The queue is the structural resource:
 * when it fills, decode stalls and fetch backs up into the shared
 * JJ-memory bandwidth — which is exactly the contention the
 * multi-tile arbiter models.
 */

#ifndef QUEST_CORE_ISSUE_QUEUE_HPP
#define QUEST_CORE_ISSUE_QUEUE_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "isa/opcodes.hpp"

namespace quest::core {

/**
 * Modeled JJ-clock latency of one issued uop's waveform: how many
 * cycles after issue its operand qubits become available to a
 * dependent uop. Single-qubit gates and preparations play in one
 * cycle, the two-qubit interaction in two, measurement — the long
 * pole the in-order barrier convoys behind — in four.
 */
std::size_t uopLatencyCycles(isa::PhysOpcode op);

/**
 * The longest uop waveform in the model (measurement). Exposed so
 * the static timing oracle (verify::TimingOracle) can bound issue
 * schedules without enumerating opcodes; a test pins it to
 * max over uopLatencyCycles.
 */
inline constexpr std::size_t kMaxUopLatencyCycles = 4;

/** Per-uop dependency and completion tracking. */
class Scoreboard
{
  public:
    explicit Scoreboard(std::size_t num_uops);

    std::size_t numUops() const { return _entries.size(); }

    /** Record that `uop` must wait for `producer` to complete. */
    void addProducer(std::uint32_t uop, std::uint32_t producer);

    const std::vector<std::uint32_t> &
    producers(std::uint32_t uop) const
    {
        return _entries.at(uop).producers;
    }

    bool issued(std::uint32_t uop) const
    {
        return _entries.at(uop).issued;
    }

    /** Cycle at which an issued uop's result is available. */
    std::uint64_t completion(std::uint32_t uop) const;

    /** True when every producer of `uop` has completed by `cycle`
     *  (i.e. the uop may issue at `cycle`). */
    bool ready(std::uint32_t uop, std::uint64_t cycle) const;

    /** Mark `uop` issued, its result available at `completes`. */
    void markIssued(std::uint32_t uop, std::uint64_t completes);

  private:
    struct Entry
    {
        std::vector<std::uint32_t> producers;
        std::uint64_t completes = 0;
        bool issued = false;
    };
    std::vector<Entry> _entries;
};

/** Bounded FIFO of decoded, not-yet-issued uops (seq ids). Entries
 *  stay in decode order, so an oldest-first scan is a front-to-back
 *  walk. */
class IssueQueue
{
  public:
    explicit IssueQueue(std::size_t capacity);

    std::size_t capacity() const { return _capacity; }
    std::size_t size() const { return _entries.size(); }
    bool empty() const { return _entries.empty(); }
    bool full() const { return _entries.size() >= _capacity; }

    /** Enqueue a decoded uop; the queue must not be full. */
    void push(std::uint32_t uop);

    /** Entries in decode (age) order, oldest first. */
    const std::deque<std::uint32_t> &entries() const
    {
        return _entries;
    }

    /** Remove the entry at `position` (an index into entries()). */
    void erase(std::size_t position);

  private:
    std::size_t _capacity;
    std::deque<std::uint32_t> _entries;
};

} // namespace quest::core

#endif // QUEST_CORE_ISSUE_QUEUE_HPP
