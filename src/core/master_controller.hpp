/**
 * @file
 * Master controller (Section 4.2, Figure 7).
 *
 * The master controller sits in the 77 K CMOS domain and
 * orchestrates all logical operations: it dispatches 2-byte logical
 * instructions to the owning MCE over the packet-switched global
 * bus, collects residual detection events from the MCEs' local
 * decoders, runs the global MWPM decode, and returns corrections.
 * Everything crossing the global bus is accounted by category so
 * the system model can reproduce the paper's bandwidth comparison.
 */

#ifndef QUEST_CORE_MASTER_CONTROLLER_HPP
#define QUEST_CORE_MASTER_CONTROLLER_HPP

#include <memory>
#include <vector>

#include "decode/cluster_decoder.hpp"
#include "decode/mwpm_decoder.hpp"
#include "mce.hpp"
#include "network.hpp"

namespace quest::core {

/** Which algorithm the master's global decoder runs. */
enum class GlobalDecoderKind
{
    Mwpm,    ///< exact/greedy minimum-weight matching
    Cluster, ///< union-find cluster decoder (real-time oriented)
};

/** Configuration of the whole control processor. */
struct MasterConfig
{
    std::size_t numMces = 4;
    MceConfig mce;
    GlobalDecoderKind globalDecoder = GlobalDecoderKind::Mwpm;
    /** QECC rounds between global decodes; 0 means one code
     *  distance's worth (the standard decode cadence). */
    std::size_t decodeWindowRounds = 0;

    /** Global interconnect parameters (mceCount is overridden to
     *  numMces at construction). */
    NetworkConfig network;
};

/** Bytes on the bus per forwarded correction entry. */
inline constexpr std::size_t correctionEntryBytes = 4;

/** The 77 K master controller plus its array of MCEs. */
class MasterController
{
  public:
    explicit MasterController(const MasterConfig &cfg);

    std::size_t numMces() const { return _mces.size(); }
    Mce &mce(std::size_t i) { return *_mces.at(i); }
    const Mce &mce(std::size_t i) const { return *_mces.at(i); }

    /**
     * Dispatch one logical instruction. The operand's low bits
     * select the MCE (operand % numMces); the remaining bits are the
     * MCE-local logical qubit id. Charges one 2-byte packet to the
     * global bus.
     */
    void dispatch(const isa::LogicalInstr &instr);

    /** Dispatch a whole trace instruction by instruction. */
    void dispatchTrace(const isa::LogicalTrace &trace);

    /**
     * Dispatch a distillation block to an MCE through its icache;
     * only the miss traffic (or a replay token) crosses the bus.
     */
    ICacheAccess dispatchBlock(std::size_t mce_idx,
                               std::uint32_t block_id,
                               const isa::LogicalTrace &body);

    /** Send one synchronization token to every MCE. */
    void broadcastSync();

    /**
     * Move a logical qubit from one MCE tile to another -- the
     * cross-MCE operation the paper leaves unevaluated (footnote 9),
     * modelled here as a teleportation-based transfer: the master
     * sends the channel-setup and measurement instructions to both
     * tiles (four 2-byte packets plus a sync token each), the
     * destination allocates fresh defects, both tiles run one code
     * distance of QECC rounds to complete the fault-tolerant hand-
     * off, and the source defects are retired.
     *
     * @return the logical qubit's id on the destination MCE.
     */
    int transferLogicalQubit(std::size_t src_mce, int src_id,
                             std::size_t dst_mce,
                             qecc::Coord dst_anchor);

    /**
     * Advance every MCE one QECC round; after each decode window,
     * collect residual events, decode globally and send corrections.
     */
    void stepRound();

    /** Run n rounds. */
    void
    runRounds(std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            stepRound();
    }

    /** Force a global decode immediately. */
    void decodeNow();

    /** @name Global bus accounting (bytes). */
    ///@{
    double busBytesLogical() const { return _bytesLogical.value(); }
    double busBytesSync() const { return _bytesSync.value(); }
    double busBytesSyndrome() const { return _bytesSyndrome.value(); }
    double busBytesCorrections() const
    {
        return _bytesCorrections.value();
    }
    double busBytesCacheTraffic() const
    {
        return _bytesCache.value();
    }
    double totalBusBytes() const;
    ///@}

    /**
     * Bytes the baseline software-managed design would have
     * streamed for the rounds executed so far: one byte-sized
     * instruction per qubit per sub-cycle (Section 3.3).
     */
    double baselineEquivalentBytes() const;

    std::size_t roundsRun() const { return _roundsRun; }

    /** The packet-switched interconnect carrying all bus traffic. */
    PacketNetwork &network() { return _network; }

    sim::StatGroup &stats() { return _stats; }

  private:
    MasterConfig _cfg;
    std::vector<std::unique_ptr<Mce>> _mces;
    std::vector<decode::MwpmDecoder> _decoders;
    std::vector<decode::ClusterDecoder> _clusterDecoders;

    std::size_t _roundsRun = 0;
    std::size_t _roundsSinceDecode = 0;

    sim::StatGroup _stats;
    PacketNetwork _network;
    sim::Scalar &_bytesLogical;
    sim::Scalar &_bytesSync;
    sim::Scalar &_bytesSyndrome;
    sim::Scalar &_bytesCorrections;
    sim::Scalar &_bytesCache;

    std::size_t decodeWindow() const;
};

} // namespace quest::core

#endif // QUEST_CORE_MASTER_CONTROLLER_HPP
