/**
 * @file
 * Master controller (Section 4.2, Figure 7).
 *
 * The master controller sits in the 77 K CMOS domain and
 * orchestrates all logical operations: it dispatches 2-byte logical
 * instructions to the owning MCE over the packet-switched global
 * bus, collects residual detection events from the MCEs' local
 * decoders, runs the global MWPM decode, and returns corrections.
 * Everything crossing the global bus is accounted by category so
 * the system model can reproduce the paper's bandwidth comparison.
 */

#ifndef QUEST_CORE_MASTER_CONTROLLER_HPP
#define QUEST_CORE_MASTER_CONTROLLER_HPP

#include <memory>
#include <vector>

#include "decode/cluster_decoder.hpp"
#include "decode/mwpm_decoder.hpp"
#include "decode/pipeline.hpp"
#include "decode/streaming.hpp"
#include "mce.hpp"
#include "network.hpp"
#include "sim/fault_injector.hpp"

namespace quest::core {

/** Which algorithm the master's global decoder runs. */
enum class GlobalDecoderKind
{
    Mwpm,    ///< exact/greedy minimum-weight matching
    Cluster, ///< union-find cluster decoder (real-time oriented)
};

/** Configuration of the whole control processor. */
struct MasterConfig
{
    std::size_t numMces = 4;
    MceConfig mce;
    GlobalDecoderKind globalDecoder = GlobalDecoderKind::Mwpm;
    /** QECC rounds between global decodes; 0 means one code
     *  distance's worth (the standard decode cadence). */
    std::size_t decodeWindowRounds = 0;

    /** Streaming sliding-window decode: when nonzero, the offline
     *  collect-then-decode cadence is replaced by a per-tile
     *  decode::StreamingDecoder that consumes every round as it is
     *  extracted and commits overlapping windows of this many
     *  rounds. 0 keeps the offline path bit-identical to before. */
    std::size_t streamWindowRounds = 0;

    /** Streaming commit/slide distance; 0 picks half the window
     *  (minimum 1). streamStrideRounds == streamWindowRounds gives
     *  non-overlapping windows, the offline cadence. */
    std::size_t streamStrideRounds = 0;

    /** Global interconnect parameters (mceCount is overridden to
     *  numMces at construction). */
    NetworkConfig network;

    /** @name Classical fault model & resilience knobs.
     *  Defaults keep the whole layer off: all-zero fault rates,
     *  no scrub, no watchdog, no deadline modeling -- bit-identical
     *  to the fault-free design. */
    ///@{

    /** Per-site classical fault rates and replay seed. */
    sim::FaultConfig faults;

    /** Rounds between microcode parity scrubs (0 disables). The
     *  scrub polls every MCE's parity flag and re-uploads the full
     *  image of any corrupted tile over the bus. */
    std::size_t scrubIntervalRounds = 0;

    /** Rounds between MCE heartbeats (0 disables the watchdog). */
    std::size_t heartbeatIntervalRounds = 0;

    /** Missed heartbeats before a tile is quarantined/re-synced. */
    std::size_t watchdogMissThreshold = 2;

    /** Model the global decoder's real-time deadline: an MWPM
     *  decode that would overrun the window degrades to the
     *  union-find cluster decoder and the tile's noise is stretched
     *  for the late window (host::delivery's inflation model). */
    bool modelDecodeDeadline = false;
    ///@}

    /** @name Multi-tile fetch arbitration.
     *  When sharedFetchBandwidth is nonzero, every stepRound() also
     *  runs the cycle-level arbiter: all live tiles' replay
     *  pipelines contend for that many shared JJ-memory fetch slots
     *  per cycle, producing per-tile bandwidth-wait counters and
     *  slack gauges. Purely observational — the functional replay is
     *  untouched — and off by default (0), keeping the golden traces
     *  bit-identical. */
    ///@{

    /** Shared fetch slots per cycle across all tiles (0 disables
     *  arbitration). */
    std::size_t sharedFetchBandwidth = 0;

    /** Grant policy when tiles contend. */
    ArbiterPolicy arbiterPolicy = ArbiterPolicy::RoundRobin;
    ///@}
};

/** Bytes on the bus per forwarded correction entry. */
inline constexpr std::size_t correctionEntryBytes = 4;

/** Supervisor re-issues after the link-level retry budget fails. */
inline constexpr std::size_t maxBusEscalations = 8;

/** The 77 K master controller plus its array of MCEs. */
class MasterController
{
  public:
    explicit MasterController(const MasterConfig &cfg);

    /** Detaches the stat tree from the global metrics registry. */
    ~MasterController();

    std::size_t numMces() const { return _mces.size(); }
    Mce &mce(std::size_t i) { return *_mces.at(i); }
    const Mce &mce(std::size_t i) const { return *_mces.at(i); }

    /**
     * Dispatch one logical instruction. The operand's low bits
     * select the MCE (operand % numMces); the remaining bits are the
     * MCE-local logical qubit id. Charges one 2-byte packet to the
     * global bus.
     */
    void dispatch(const isa::LogicalInstr &instr);

    /** Dispatch a whole trace instruction by instruction. */
    void dispatchTrace(const isa::LogicalTrace &trace);

    /**
     * Dispatch a distillation block to an MCE through its icache;
     * only the miss traffic (or a replay token) crosses the bus.
     */
    ICacheAccess dispatchBlock(std::size_t mce_idx,
                               std::uint32_t block_id,
                               const isa::LogicalTrace &body);

    /** Send one synchronization token to every MCE. */
    void broadcastSync();

    /**
     * Move a logical qubit from one MCE tile to another -- the
     * cross-MCE operation the paper leaves unevaluated (footnote 9),
     * modelled here as a teleportation-based transfer: the master
     * sends the channel-setup and measurement instructions to both
     * tiles (four 2-byte packets plus a sync token each), the
     * destination allocates fresh defects, both tiles run one code
     * distance of QECC rounds to complete the fault-tolerant hand-
     * off, and the source defects are retired.
     *
     * @return the logical qubit's id on the destination MCE.
     */
    int transferLogicalQubit(std::size_t src_mce, int src_id,
                             std::size_t dst_mce,
                             qecc::Coord dst_anchor);

    /**
     * Advance every MCE one QECC round; after each decode window,
     * collect residual events, decode globally and send corrections.
     */
    void stepRound();

    /** Run n rounds. */
    void
    runRounds(std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            stepRound();
    }

    /** Force a global decode immediately. In streaming mode this
     *  flushes every tile's streaming decoder (an end-of-shot
     *  barrier), committing all buffered rounds. */
    void decodeNow();

    /** True when the streaming sliding-window decode path is on. */
    bool streamingDecode() const
    {
        return _cfg.streamWindowRounds > 0;
    }

    /** Tile i's streaming decoder (streaming mode only). */
    const decode::StreamingDecoder &streamer(std::size_t i) const
    {
        return *_streamers.at(i);
    }

    /** True when the shared-bandwidth arbiter runs each round. */
    bool arbitrating() const
    {
        return _cfg.sharedFetchBandwidth > 0;
    }

    /** The arbiter's plan for the last stepRound(). Asserts that
     *  arbitration is on and at least one round has run. */
    const ArbitrationResult &lastArbitration() const;

    /** @name Classical resilience. */
    ///@{

    /**
     * Run one heartbeat sweep now: ping every MCE, count misses,
     * and quarantine/re-sync any tile past the miss threshold.
     */
    void heartbeatNow();

    /**
     * Run one microcode scrub now: poll every MCE's parity flag and
     * re-upload the full image of any corrupted tile.
     */
    void scrubNow();

    sim::FaultInjector &faultInjector() { return _faults; }
    sim::StatGroup &faultStats() { return _faultStats; }
    const decode::DecodeDeadline &decodeDeadline() const
    {
        return _deadline;
    }

    double seuInjected() const { return _seuInjected.value(); }
    double seuDetected() const { return _seuDetected.value(); }
    double seuSilentRepaired() const { return _seuSilent.value(); }
    double scrubCount() const { return _scrubs.value(); }
    double decoderOverruns() const { return _decoderOverruns.value(); }
    double decoderFallbacks() const
    {
        return _decoderFallbacks.value();
    }
    double heartbeatsSent() const { return _heartbeats.value(); }
    double heartbeatsMissed() const
    {
        return _heartbeatsMissed.value();
    }
    double hangsInjected() const { return _hangsInjected.value(); }
    double quarantineCount() const { return _quarantines.value(); }
    double resumeCount() const { return _resumes.value(); }
    double busEscalations() const { return _busEscalations.value(); }
    double packetsAbandoned() const
    {
        return _packetsAbandoned.value();
    }
    ///@}

    /** @name Global bus accounting (bytes). */
    ///@{
    double busBytesLogical() const { return _bytesLogical.value(); }
    double busBytesSync() const { return _bytesSync.value(); }
    double busBytesSyndrome() const { return _bytesSyndrome.value(); }
    double busBytesCorrections() const
    {
        return _bytesCorrections.value();
    }
    double busBytesCacheTraffic() const
    {
        return _bytesCache.value();
    }
    /** Microcode scrub polls and image re-uploads. */
    double busBytesScrub() const { return _bytesScrub.value(); }
    double totalBusBytes() const;
    ///@}

    /**
     * Bytes the baseline software-managed design would have
     * streamed for the rounds executed so far: one byte-sized
     * instruction per qubit per sub-cycle (Section 3.3).
     */
    double baselineEquivalentBytes() const;

    std::size_t roundsRun() const { return _roundsRun; }

    /** The packet-switched interconnect carrying all bus traffic. */
    PacketNetwork &network() { return _network; }

    sim::StatGroup &stats() { return _stats; }

  private:
    MasterConfig _cfg;
    std::vector<std::unique_ptr<Mce>> _mces;
    std::vector<decode::MwpmDecoder> _decoders;
    std::vector<decode::ClusterDecoder> _clusterDecoders;
    /** Per-tile streaming decoders; empty in offline mode. */
    std::vector<std::unique_ptr<decode::StreamingDecoder>> _streamers;

    std::size_t _roundsRun = 0;
    std::size_t _roundsSinceDecode = 0;

    sim::FaultInjector _faults;
    decode::DecodeDeadline _deadline;
    std::vector<std::size_t> _missedHeartbeats;

    /** Shared-bandwidth arbiter state (sharedFetchBandwidth > 0). */
    std::unique_ptr<DynamicScheduler> _arbiter;
    ArbitrationResult _lastArbitration;
    bool _arbValid = false;
    // Per-tile contention metrics, bound at construction (registry
    // references, never function-local statics).
    std::vector<sim::metrics::Counter *> _mTileBwWait;
    std::vector<sim::metrics::Gauge *> _mTileSlack;

    sim::StatGroup _stats;
    PacketNetwork _network;
    sim::Scalar &_bytesLogical;
    sim::Scalar &_bytesSync;
    sim::Scalar &_bytesSyndrome;
    sim::Scalar &_bytesCorrections;
    sim::Scalar &_bytesCache;
    sim::Scalar &_bytesScrub;

    sim::StatGroup _faultStats;
    sim::Scalar &_seuInjected;
    sim::Scalar &_seuDetected;
    sim::Scalar &_seuSilent;
    sim::Scalar &_scrubs;
    sim::Scalar &_decoderOverruns;
    sim::Scalar &_decoderFallbacks;
    sim::Scalar &_heartbeats;
    sim::Scalar &_heartbeatsMissed;
    sim::Scalar &_hangsInjected;
    sim::Scalar &_quarantines;
    sim::Scalar &_resumes;
    sim::Scalar &_busEscalations;
    sim::Scalar &_packetsAbandoned;

    std::size_t decodeWindow() const;

    /** Resolved streaming commit/slide distance. */
    std::size_t streamStride() const;

    /** Bus/fault accounting for one streaming window commit. */
    void commitStream(std::size_t mce_idx,
                      const decode::StreamCommit &commit);

    /** Flush tile i's streaming decoder (commit everything). */
    void flushStreamTile(std::size_t mce_idx);

    /**
     * Send one bus packet, charging `category`, with supervisor
     * re-issues when the link-level retry budget is exhausted.
     */
    void sendOnBus(std::size_t mce_idx, std::size_t bytes,
                   sim::Scalar &category);

    /** Per-round classical fault arrivals (hangs, SEUs). */
    void injectRoundFaults();

    /** Run the shared-bandwidth arbiter over this round's tiles. */
    void arbitrateRound();

    /** Collect, decode and correct one tile's residual window. */
    void decodeTile(std::size_t mce_idx);

    /** Quarantine a wedged tile: re-sync microcode and resume. */
    void quarantineAndResync(std::size_t mce_idx);
};

} // namespace quest::core

#endif // QUEST_CORE_MASTER_CONTROLLER_HPP
