#include "microcode.hpp"

#include <algorithm>
#include <limits>

#include "sim/logging.hpp"
#include "sim/metrics.hpp"

namespace quest::core {

std::string
microcodeDesignName(MicrocodeDesign design)
{
    switch (design) {
      case MicrocodeDesign::Ram: return "RAM";
      case MicrocodeDesign::Fifo: return "FIFO";
      case MicrocodeDesign::UnitCell: return "Unit-cell";
    }
    sim::panic("invalid microcode design %d", int(design));
}

std::size_t
MicrocodeModel::uopBits(MicrocodeDesign design, std::size_t qubits) const
{
    switch (design) {
      case MicrocodeDesign::Ram:
        return isa::ramUopBits(_spec->opcodeCount, qubits);
      case MicrocodeDesign::Fifo:
      case MicrocodeDesign::UnitCell:
        return isa::fifoUopBits(_spec->opcodeCount);
    }
    sim::panic("invalid microcode design %d", int(design));
}

std::size_t
MicrocodeModel::capacityBits(MicrocodeDesign design,
                             std::size_t qubits) const
{
    switch (design) {
      case MicrocodeDesign::Ram:
      case MicrocodeDesign::Fifo:
        return qubits * _spec->uopsPerQubit * uopBits(design, qubits);
      case MicrocodeDesign::UnitCell:
        // One stored unit-cell program regardless of N.
        return _spec->unitCellUops * uopBits(design, qubits);
    }
    sim::panic("invalid microcode design %d", int(design));
}

std::size_t
MicrocodeModel::capacityLimitedQubits(MicrocodeDesign design,
                                      std::size_t total_bits) const
{
    if (design == MicrocodeDesign::UnitCell) {
        // Fits or it doesn't; once it fits, capacity never binds.
        if (capacityBits(design, 1) <= total_bits)
            return std::numeric_limits<std::size_t>::max();
        return 0;
    }
    // capacityBits is monotone in N: scan upward geometrically, then
    // binary search the boundary.
    if (capacityBits(design, 1) > total_bits)
        return 0;
    std::size_t lo = 1, hi = 2;
    while (capacityBits(design, hi) <= total_bits) {
        lo = hi;
        hi *= 2;
        QUEST_ASSERT(hi < (std::size_t(1) << 40),
                     "capacity search diverged");
    }
    while (lo + 1 < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (capacityBits(design, mid) <= total_bits)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

std::size_t
MicrocodeModel::bandwidthLimitedQubits(const tech::MemoryConfig &cfg) const
{
    const auto lat = tech::gateLatencies(_technology);
    const double round_seconds =
        sim::ticksToSeconds(_spec->roundDuration(lat));
    const double uops_per_second =
        _mem.uopsPerSecond(cfg, isa::fifoUopBits(_spec->opcodeCount));
    const double qubits = round_seconds * uops_per_second
        / double(_spec->uopsPerQubit);
    return static_cast<std::size_t>(qubits);
}

std::size_t
MicrocodeModel::servicedQubits(MicrocodeDesign design,
                               const tech::MemoryConfig &cfg) const
{
    const std::size_t cap =
        capacityLimitedQubits(design, cfg.totalBits());
    const std::size_t bw = bandwidthLimitedQubits(cfg);
    return std::min(cap, bw);
}

tech::MemoryConfig
MicrocodeModel::optimalConfig(std::size_t total_bits,
                              MicrocodeDesign design) const
{
    const auto configs = tech::JJMemoryModel::standardConfigs(total_bits);
    QUEST_ASSERT(!configs.empty(), "no candidate memory configurations");

    const std::size_t program_bits =
        _spec->unitCellUops * isa::fifoUopBits(_spec->opcodeCount);

    const tech::MemoryConfig *best = nullptr;
    std::size_t best_qubits = 0;
    double best_power = 0.0;
    for (const auto &cfg : configs) {
        if (design == MicrocodeDesign::UnitCell
            && cfg.bankBits < program_bits) {
            // Each channel replays from its own full program copy.
            continue;
        }
        const std::size_t q = servicedQubits(design, cfg);
        const double power = _mem.powerUw(cfg);
        if (!best || q > best_qubits
            || (q == best_qubits && power < best_power)) {
            best = &cfg;
            best_qubits = q;
            best_power = power;
        }
    }
    QUEST_ASSERT(best != nullptr,
                 "no memory configuration can hold the %s program",
                 _spec->name.c_str());
    return *best;
}

MicrocodeStore::MicrocodeStore(std::size_t bits,
                               std::size_t word_bits)
    : _bits(bits), _wordBits(word_bits),
      _flipsPerWord(word_bits ? (bits + word_bits - 1) / word_bits
                              : 0,
                    0),
      _mSeuFlips(sim::metrics::Registry::global().counter(
          "mce.microcode.seu_flips",
          "single-event upsets injected into microcode stores")),
      _mRepairs(sim::metrics::Registry::global().counter(
          "mce.microcode.repairs", "microcode image scrub rewrites")),
      _mRepairBytes(sim::metrics::Registry::global().counter(
          "mce.microcode.repair_bytes",
          "bytes rewritten by microcode scrubbing"))
{
    QUEST_ASSERT(bits == 0 || word_bits > 0,
                 "microcode store needs a nonzero word size");
}

std::size_t
MicrocodeStore::flipRandomBit(sim::Rng &rng)
{
    QUEST_ASSERT(_bits > 0, "SEU in an empty microcode store");
    ++_mSeuFlips;
    const std::size_t bit = rng.uniformInt(_bits);
    const std::size_t word = bit / _wordBits;
    // Parity sees the word's flip count modulo two.
    if (_flipsPerWord[word] % 2 == 0)
        ++_oddWords;
    else
        --_oddWords;
    ++_flipsPerWord[word];
    ++_flipped;
    return word;
}

std::size_t
MicrocodeStore::silentBits() const
{
    std::size_t silent = 0;
    for (std::uint8_t flips : _flipsPerWord)
        if (flips > 0 && flips % 2 == 0)
            silent += flips;
    return silent;
}

std::size_t
MicrocodeStore::repair()
{
    ++_mRepairs;
    std::fill(_flipsPerWord.begin(), _flipsPerWord.end(), 0);
    _flipped = 0;
    _oddWords = 0;
    const std::size_t bytes = imageBytes();
    _mRepairBytes += bytes;
    return bytes;
}

} // namespace quest::core
