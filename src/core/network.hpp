/**
 * @file
 * Packet-switched global interconnect (Section 4.2: "The master
 * controller delivers logical instructions to MCE using a packet
 * switched network", Figure 7's global data and instruction bus).
 *
 * The network connects the 77 K master controller (node 0) to the
 * MCE array at 4 K. Topology is a balanced tree of configurable
 * radix (point-to-point wiring across thermal stages is the scarce
 * resource, so a tree matches the physical wiring plan). The model
 * is analytical per packet -- hop latency plus serialization --
 * with per-link byte accounting so utilization and the bisection
 * load can be reported. Because QuEST needs only logical-rate
 * traffic here, the interesting output is how *little* of the
 * network this uses; the same model pointed at the baseline's
 * physical-rate stream shows the wiring that QuEST avoids.
 */

#ifndef QUEST_CORE_NETWORK_HPP
#define QUEST_CORE_NETWORK_HPP

#include <cstdint>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace quest::core {

/** Interconnect configuration. */
struct NetworkConfig
{
    std::size_t mceCount = 4;
    std::size_t radix = 4;          ///< tree fan-out per router
    sim::Tick hopLatency = sim::nanoseconds(5);
    double linkBytesPerTick = 0.004; ///< 4 GB/s links (bytes per ps)
};

/** One delivered packet's timing. */
struct PacketTiming
{
    std::size_t hops = 0;
    sim::Tick latency = 0;
};

/** Analytical packet-switched tree network. */
class PacketNetwork
{
  public:
    PacketNetwork(const NetworkConfig &cfg, sim::StatGroup &parent);

    const NetworkConfig &config() const { return _cfg; }

    /** Tree depth from the master to any MCE leaf. */
    std::size_t depth() const { return _depth; }

    /** Hops between the master (node 0) and an MCE leaf. */
    std::size_t hopsToMce(std::size_t mce_index) const;

    /**
     * Account one packet from the master to an MCE (or back).
     * @return hop count and end-to-end latency.
     */
    PacketTiming send(std::size_t mce_index, std::size_t bytes);

    /** Total bytes accepted by the network. */
    double bytesCarried() const { return _bytes.value(); }
    double packetsCarried() const { return _packets.value(); }

    /** Mean packet latency in ticks. */
    double meanLatencyTicks() const;

    /**
     * Offered load on the master's root link as a fraction of its
     * capacity, over the observed interval.
     * @param interval Ticks the traffic was spread over.
     */
    double
    rootLinkUtilization(sim::Tick interval) const
    {
        if (interval == 0)
            return 0.0;
        const double capacity =
            _cfg.linkBytesPerTick * double(interval);
        return _bytes.value() / capacity;
    }

  private:
    NetworkConfig _cfg;
    std::size_t _depth;

    sim::StatGroup _stats;
    sim::Scalar &_bytes;
    sim::Scalar &_packets;
    sim::Scalar &_latencyTotal;
    sim::Histogram &_latencyHist;
};

} // namespace quest::core

#endif // QUEST_CORE_NETWORK_HPP
