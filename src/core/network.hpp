/**
 * @file
 * Packet-switched global interconnect (Section 4.2: "The master
 * controller delivers logical instructions to MCE using a packet
 * switched network", Figure 7's global data and instruction bus).
 *
 * The network connects the 77 K master controller (node 0) to the
 * MCE array at 4 K. Topology is a balanced tree of configurable
 * radix (point-to-point wiring across thermal stages is the scarce
 * resource, so a tree matches the physical wiring plan). The model
 * is analytical per packet -- hop latency plus serialization --
 * with per-link byte accounting so utilization and the bisection
 * load can be reported. Because QuEST needs only logical-rate
 * traffic here, the interesting output is how *little* of the
 * network this uses; the same model pointed at the baseline's
 * physical-rate stream shows the wiring that QuEST avoids.
 *
 * Resilience: when a sim::FaultInjector with nonzero rates is
 * attached, every packet carries a CRC trailer and is acknowledged;
 * a lost packet times out and a corrupted one is NACKed, and the
 * sender retransmits with exponential backoff up to a bounded retry
 * budget. All retransmit bytes and latency are charged to the same
 * stats as first-try traffic, so the bandwidth figures stay honest
 * under faults. A fault-free network (no injector, or all-zero
 * rates) takes the original zero-overhead path and its accounting
 * is bit-identical to the seed model.
 */

#ifndef QUEST_CORE_NETWORK_HPP
#define QUEST_CORE_NETWORK_HPP

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace quest::sim {
class FaultInjector;
}

namespace quest::core {

/** Interconnect configuration. */
struct NetworkConfig
{
    std::size_t mceCount = 4;
    std::size_t radix = 4;          ///< tree fan-out per router
    sim::Tick hopLatency = sim::nanoseconds(5);
    double linkBytesPerTick = 0.004; ///< 4 GB/s links (bytes per ps)

    /** @name Link-level CRC + ACK/NACK retransmit protocol.
     *  Engaged only when an enabled FaultInjector is attached. */
    ///@{
    std::size_t crcBytes = 2;   ///< CRC trailer per packet
    std::size_t ackBytes = 2;   ///< ACK/NACK return token
    std::size_t retryLimit = 4; ///< retransmissions before giving up
    sim::Tick retryBackoff = sim::nanoseconds(10); ///< doubles per retry

    /**
     * Fraction of each backoff step randomised: step k waits
     * `base·2^k · (1 − j + j·u)` with u uniform in [0, 1). Senders
     * whose packets died together then retry apart instead of
     * re-colliding in lockstep (the classic retry-storm fix). The
     * draw comes from a dedicated stream seeded off the attached
     * FaultInjector's seed — never the wall clock — so a faulty run
     * replays bit-for-bit; 0 disables the draw entirely and
     * restores the pre-jitter backoff sequence.
     */
    double retryJitter = 0.5;
    ///@}
};

/** One delivered packet's timing. */
struct PacketTiming
{
    std::size_t hops = 0;
    sim::Tick latency = 0;
    std::size_t attempts = 1;  ///< transmissions including retries
    bool delivered = true;     ///< false when the retry budget ran out
};

/** Analytical packet-switched tree network. */
class PacketNetwork
{
  public:
    PacketNetwork(const NetworkConfig &cfg, sim::StatGroup &parent);

    const NetworkConfig &config() const { return _cfg; }

    /**
     * Attach the classical fault source. Packet loss and corruption
     * (and the CRC/ACK protocol that recovers from them) are active
     * only while the injector has a nonzero rate somewhere.
     */
    void attachFaults(sim::FaultInjector *faults);

    /** Tree depth from the master to any MCE leaf. */
    std::size_t depth() const { return _depth; }

    /** Hops between the master (node 0) and an MCE leaf. */
    std::size_t hopsToMce(std::size_t mce_index) const;

    /**
     * Account one packet from the master to an MCE (or back).
     * @return hop count, end-to-end latency (including retries) and
     *         whether the retry budget sufficed to deliver it.
     */
    PacketTiming send(std::size_t mce_index, std::size_t bytes);

    /** Total bytes accepted by the network (incl. ARQ overhead). */
    double bytesCarried() const { return _bytes.value(); }
    double packetsCarried() const { return _packets.value(); }

    /** @name CRC/retry protocol accounting. */
    ///@{
    double retransmits() const { return _retransmits.value(); }
    double lostPackets() const { return _lost.value(); }
    double corruptedPackets() const { return _corrupted.value(); }
    double deliveryFailures() const { return _failures.value(); }
    double protocolOverheadBytes() const { return _overheadBytes.value(); }
    ///@}

    /** Mean packet latency in ticks. */
    double meanLatencyTicks() const;

    /**
     * Offered load on the master's root link as a fraction of its
     * capacity, over the observed interval.
     * @param interval Ticks the traffic was spread over.
     */
    double
    rootLinkUtilization(sim::Tick interval) const
    {
        if (interval == 0)
            return 0.0;
        const double capacity =
            _cfg.linkBytesPerTick * double(interval);
        return _bytes.value() / capacity;
    }

  private:
    NetworkConfig _cfg;
    std::size_t _depth;
    sim::FaultInjector *_faults = nullptr;
    sim::Rng _jitterRng; ///< backoff jitter; reseeded on attachFaults

    sim::StatGroup _stats;
    sim::Scalar &_bytes;
    sim::Scalar &_packets;
    sim::Scalar &_latencyTotal;
    sim::Scalar &_retransmits;
    sim::Scalar &_lost;
    sim::Scalar &_corrupted;
    sim::Scalar &_failures;
    sim::Scalar &_overheadBytes;
    sim::Histogram &_latencyHist;
};

} // namespace quest::core

#endif // QUEST_CORE_NETWORK_HPP
