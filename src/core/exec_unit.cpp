#include "exec_unit.hpp"

#include "sim/logging.hpp"

namespace quest::core {

QuantumExecutionUnit::QuantumExecutionUnit(std::size_t num_qubits,
                                           sim::StatGroup &parent)
    : _latched(num_qubits, isa::PhysOpcode::Nop),
      _stats("exec_unit"),
      _latches(_stats.scalar("latches", "uops latched onto switches")),
      _clocks(_stats.scalar("master_clocks", "master clock firings")),
      _fired(_stats.scalar("fired_instructions",
                           "non-NOP quantum instructions executed"))
{
    QUEST_ASSERT(num_qubits > 0, "execution unit needs qubits");
    parent.addChild(_stats);
}

void
QuantumExecutionUnit::latch(std::size_t q, isa::PhysOpcode op)
{
    QUEST_ASSERT(q < _latched.size(),
                 "latch target %zu beyond switch array size %zu",
                 q, _latched.size());
    _latched[q] = op;
    ++_latches;
}

void
QuantumExecutionUnit::release(std::size_t q)
{
    QUEST_ASSERT(q < _latched.size(),
                 "release target %zu beyond switch array size %zu",
                 q, _latched.size());
    _latched[q] = isa::PhysOpcode::Nop;
}

const std::vector<isa::PhysOpcode> &
QuantumExecutionUnit::masterClock()
{
    ++_clocks;
    for (isa::PhysOpcode op : _latched)
        if (op != isa::PhysOpcode::Nop)
            ++_fired;
    return _latched;
}

} // namespace quest::core
