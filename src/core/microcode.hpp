/**
 * @file
 * Microcode memory designs (paper Sections 4.4-4.5, Figures 8-11).
 *
 * The microcode pipeline must hand every serviced qubit one micro-op
 * per QECC sub-cycle out of a JJ memory whose capacity and bandwidth
 * are both scarce. Three designs are modelled:
 *
 *  - RAM (baseline): software-buffered stream with conventional
 *    opcode + address encoding. Capacity O(N log2 N); the 4 Kb
 *    budget caps the design at a few dozen qubits.
 *  - FIFO: lockstep execution visits every qubit every sub-cycle in
 *    a fixed order, so address bits are redundant. Capacity O(N).
 *  - Unit cell: the surface-code instruction stream repeats
 *    spatially with a small unit cell; storing only the unit-cell
 *    program makes capacity O(1) and leaves the serviced-qubit count
 *    limited purely by memory *bandwidth* -- which improves
 *    super-linearly with channel count because smaller banks are
 *    also faster.
 *
 * Bandwidth model: a round of the protocol delivers uopsPerQubit
 * micro-ops to each qubit within the round duration; the switch
 * array double-buffers (Section 4.3: next instructions latch while
 * the current waveform plays), so the budget is the full round.
 */

#ifndef QUEST_CORE_MICROCODE_HPP
#define QUEST_CORE_MICROCODE_HPP

#include <string>
#include <vector>

#include "isa/instructions.hpp"
#include "qecc/protocol.hpp"
#include "sim/metrics.hpp"
#include "sim/random.hpp"
#include "tech/jj_memory.hpp"
#include "tech/parameters.hpp"

namespace quest::core {

/** The three QECC microcode storage designs of Figure 10/11. */
enum class MicrocodeDesign
{
    Ram,      ///< opcode + address per uop (baseline)
    Fifo,     ///< opcode only, implicit addressing
    UnitCell, ///< unit-cell program replayed by a state machine
};

inline constexpr MicrocodeDesign allMicrocodeDesigns[] = {
    MicrocodeDesign::Ram, MicrocodeDesign::Fifo,
    MicrocodeDesign::UnitCell,
};

/** Display name: "RAM" / "FIFO" / "Unit-cell". */
std::string microcodeDesignName(MicrocodeDesign design);

/** Capacity/bandwidth calculator for the microcode designs. */
class MicrocodeModel
{
  public:
    MicrocodeModel(const qecc::ProtocolSpec &spec,
                   tech::Technology technology)
        : _spec(&spec), _technology(technology)
    {}

    const qecc::ProtocolSpec &protocol() const { return *_spec; }

    /** Width of one stored uop under the design, for N qubits. */
    std::size_t uopBits(MicrocodeDesign design, std::size_t qubits) const;

    /**
     * Microcode bits required to service N qubits (Figure 10).
     */
    std::size_t capacityBits(MicrocodeDesign design,
                             std::size_t qubits) const;

    /**
     * Largest qubit count whose QECC program fits the given total
     * capacity (the capacity-limited bound; infinite for the unit
     * cell design once the unit-cell program fits).
     */
    std::size_t capacityLimitedQubits(MicrocodeDesign design,
                                      std::size_t total_bits) const;

    /**
     * Largest qubit count the memory's read bandwidth can feed:
     * the configuration streams uops for a whole round within the
     * round's duration.
     */
    std::size_t bandwidthLimitedQubits(
        const tech::MemoryConfig &cfg) const;

    /**
     * Qubits serviced per MCE (Figure 11): the binding minimum of
     * the capacity and bandwidth limits.
     */
    std::size_t servicedQubits(MicrocodeDesign design,
                               const tech::MemoryConfig &cfg) const;

    /**
     * Pick the best standard channel configuration for a fixed
     * total capacity (Table 2): maximize serviced qubits under the
     * constraint that every bank holds a full copy of the unit-cell
     * program (channels replay independently at offset phases);
     * break ties towards lower power.
     */
    tech::MemoryConfig optimalConfig(
        std::size_t total_bits = 4096,
        MicrocodeDesign design = MicrocodeDesign::UnitCell) const;

  private:
    const qecc::ProtocolSpec *_spec;
    tech::Technology _technology;
    tech::JJMemoryModel _mem;
};

/**
 * Parity-protected microcode memory image.
 *
 * The JJ banks that hold an MCE's QECC program are exposed to
 * single-event upsets like any cryogenic storage. The store tracks
 * which stored bits an SEU has flipped and guards every
 * microcodeWordBits-wide word with one parity bit: an odd number of
 * flips in a word is detected the next time it streams (and
 * reported to the master's scrub loop); an even number is silent
 * until the periodic full re-upload rewrites the image.
 */
class MicrocodeStore
{
  public:
    explicit MicrocodeStore(
        std::size_t bits = 0,
        std::size_t word_bits = tech::microcodeWordBits);

    std::size_t bits() const { return _bits; }
    std::size_t words() const { return _flipsPerWord.size(); }

    /** Payload of a full image re-upload over the global bus. */
    std::size_t imageBytes() const { return (_bits + 7) / 8; }

    /**
     * One SEU: flip a uniformly random stored bit.
     * @return the word the upset landed in.
     */
    std::size_t flipRandomBit(sim::Rng &rng);

    /** Total stored bits currently differing from the image. */
    std::size_t flippedBits() const { return _flipped; }

    /** Words whose parity check fails (detectable corruption). */
    std::size_t parityErrorWords() const { return _oddWords; }

    /** Flipped bits hidden by even word parity (undetectable). */
    std::size_t silentBits() const;

    bool corrupted() const { return _flipped > 0; }

    /**
     * Full re-upload from the master: every word is rewritten, so
     * detected and silent corruption are both cleared.
     * @return the bytes the re-upload moved.
     */
    std::size_t repair();

  private:
    std::size_t _bits;
    std::size_t _wordBits;
    std::vector<std::uint8_t> _flipsPerWord;

    // Constructor-bound registry counters (no function-local
    // statics; they outlive registry resets).
    sim::metrics::Counter &_mSeuFlips;
    sim::metrics::Counter &_mRepairs;
    sim::metrics::Counter &_mRepairBytes;
    std::size_t _flipped = 0;
    std::size_t _oddWords = 0;
};

} // namespace quest::core

#endif // QUEST_CORE_MICROCODE_HPP
