/**
 * @file
 * Cycle-level dynamic scheduler for the MCE microcode pipeline, and
 * the multi-tile arbiter over shared JJ-memory fetch bandwidth.
 *
 * Two pipeline models over the same per-round uop program (a
 * verify::DependencyOracle):
 *
 *  - InOrder: the paper's replay loop. A sub-cycle's slots (Nops
 *    included — the stream visits every qubit) are fetched at the
 *    fetch width, then the master clock fires all of them at once;
 *    the next sub-cycle cannot fire until the slowest waveform of
 *    the current one has played. Fetch of the next sub-cycle
 *    overlaps execution (the switch array double-buffers), but the
 *    barrier convoys every qubit behind the longest latency —
 *    measurement, at 4 cycles.
 *
 *  - OutOfOrder: decoded uops enter a bounded IssueQueue; a
 *    Scoreboard carries the oracle's qubit-touch producer edges;
 *    each cycle the oldest ready uops issue up to the issue width.
 *    Independent stabilizer groups interleave and fetch/decode
 *    overlaps syndrome extraction, so the round's makespan tracks
 *    the dependence chains instead of the barrier sum.
 *
 * Multi-round scheduling stitches rounds together through the
 * oracle's first/last-touch chains (round r+1's first toucher of a
 * qubit depends on round r's last toucher), which is what lets
 * out-of-order issue pipeline across round boundaries.
 *
 * The arbiter runs N tile pipelines against one shared fetch-slot
 * budget per cycle, granting slots round-robin or oldest-first
 * (lowest fetched watermark). Per-tile stall breakdowns separate
 * data hazards, structural (queue-full) stalls, fetch-fill bubbles
 * and bandwidth-denied cycles — the contention signal the master
 * controller exports per tile.
 *
 * Everything here is a *timing* model: functional effects retire in
 * program order through the extractor regardless of issue order, so
 * architectural observables are bit-identical between modes (the
 * replay-equivalence contract tests/test_scheduler.cpp enforces).
 */

#ifndef QUEST_CORE_SCHEDULER_HPP
#define QUEST_CORE_SCHEDULER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "issue_queue.hpp"
#include "sim/metrics.hpp"
#include "verify/dependency.hpp"

namespace quest::core {

/** How the MCE microcode pipeline orders uop issue. */
enum class SchedulingMode
{
    InOrder,    ///< sub-cycle barrier replay (the paper's pipeline)
    OutOfOrder, ///< issue-queue + scoreboard dataflow issue
};

/** Display name: "in-order" / "ooo". */
std::string schedulingModeName(SchedulingMode mode);

/** How the master arbitrates tiles over shared fetch bandwidth. */
enum class ArbiterPolicy
{
    RoundRobin,  ///< rotating priority, one step per cycle
    OldestFirst, ///< lowest fetched-slot watermark goes first
};

/** Display name: "round-robin" / "oldest-first". */
std::string arbiterPolicyName(ArbiterPolicy policy);

/**
 * Safety cap on simulated arbitration cycles: no tile program
 * legitimately needs this long. Exposed so the static timing
 * oracle can sanity-check that its worst-case bounds stay inside
 * what the dynamic model would ever simulate.
 */
inline constexpr std::uint64_t kMaxSimCycles = 50'000'000;

/** Width/capacity knobs of the dynamic pipeline. */
struct SchedulerConfig
{
    /** Uop slots fetched+decoded from the microcode store per JJ
     *  cycle (per tile, absent arbitration). */
    std::size_t fetchWidth = 4;
    /** Ready uops issued per cycle. */
    std::size_t issueWidth = 4;
    /** Issue-queue capacity (structural stall when full). */
    std::size_t queueCapacity = 32;
};

/** Stall-cycle breakdown by hazard class. */
struct StallBreakdown
{
    /** Queue non-empty but nothing ready (RAW on qubit chains), or
     *  the in-order barrier waiting out the slowest waveform. */
    std::uint64_t data = 0;
    /** Decode blocked: issue queue full (structural hazard). */
    std::uint64_t queueFull = 0;
    /** Queue empty while the stream is still fetching (fill
     *  bubble). */
    std::uint64_t fetchStarved = 0;
    /** Demanded fetch slots, granted none by the arbiter. */
    std::uint64_t bandwidthWait = 0;

    std::uint64_t
    total() const
    {
        return data + queueFull + fetchStarved + bandwidthWait;
    }
};

/** One tile's simulated issue schedule. */
struct TileSchedule
{
    /** cycles[t] lists the uop ids issued at cycle t, oldest first.
     *  Uop id = round * oracle.uops().size() + MicroOp::seq. */
    std::vector<std::vector<std::uint32_t>> cycles;

    StallBreakdown stalls;
    /** Issue-queue occupancy integrated over cycles (divide by
     *  cycles.size() for the mean). */
    std::uint64_t occupancySum = 0;
    /** Cycle by which every issued waveform has completed. */
    std::size_t makespanCycles = 0;
    /** Total uops issued (== uops x rounds when the tile ran). */
    std::size_t issued = 0;
    /** Stream slots fetched (Nops included). */
    std::size_t slotsFetched = 0;
};

/** The arbiter's view of an N-tile run. */
struct ArbitrationResult
{
    std::vector<TileSchedule> tiles;
    /** Cycle by which every tile's work completed. */
    std::size_t makespanCycles = 0;
    /** Fetch slots granted across all tiles. */
    std::uint64_t slotsGranted = 0;
};

/**
 * The dynamic scheduler: plans single-tile issue schedules and
 * arbitrates multi-tile fleets. Deterministic — pure integer cycle
 * simulation, no randomness — so a plan is a pure function of
 * (program, config, mode, policy).
 */
class DynamicScheduler
{
  public:
    explicit DynamicScheduler(const SchedulerConfig &cfg);

    const SchedulerConfig &config() const { return _cfg; }

    /**
     * Schedule `rounds` back-to-back replays of one tile's program.
     * Bumps the sched.* metrics with the plan's issue/stall
     * statistics.
     */
    TileSchedule schedule(const verify::DependencyOracle &oracle,
                          SchedulingMode mode,
                          std::size_t rounds = 1) const;

    /**
     * Run `tiles.size()` tile pipelines against a shared fetch
     * budget of `shared_bandwidth` slots per cycle. `active[i]` == 0
     * excludes tile i (a hung/quarantined engine demands nothing).
     */
    ArbitrationResult
    arbitrate(const std::vector<const verify::DependencyOracle *> &tiles,
              const std::vector<std::uint8_t> &active,
              SchedulingMode mode, std::size_t shared_bandwidth,
              ArbiterPolicy policy, std::size_t rounds = 1) const;

  private:
    SchedulerConfig _cfg;

    // Registry counters bound at construction; never function-local
    // statics (those outlive registry resets — see the
    // registry-lifetime regression test).
    sim::metrics::Counter &_mPlans;
    sim::metrics::Counter &_mIssued;
    sim::metrics::Counter &_mCycles;
    sim::metrics::Counter &_mStallData;
    sim::metrics::Counter &_mStallQueueFull;
    sim::metrics::Counter &_mStallFetch;
    sim::metrics::Counter &_mStallBandwidth;
    sim::metrics::Histogram &_hOccupancy;

    void record(const TileSchedule &tile) const;
};

} // namespace quest::core

#endif // QUEST_CORE_SCHEDULER_HPP
