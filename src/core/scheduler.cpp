#include "scheduler.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace quest::core {

using verify::DependencyOracle;
using verify::MicroOp;

std::string
schedulingModeName(SchedulingMode mode)
{
    return mode == SchedulingMode::InOrder ? "in-order" : "ooo";
}

std::string
arbiterPolicyName(ArbiterPolicy policy)
{
    return policy == ArbiterPolicy::RoundRobin ? "round-robin"
                                               : "oldest-first";
}

namespace {

/** One tile's pipeline state inside the arbitration loop. */
struct TileState
{
    const DependencyOracle *oracle = nullptr;
    bool active = false;
    SchedulingMode mode = SchedulingMode::InOrder;
    std::size_t rounds = 1;

    std::size_t numUops = 0;     ///< per round
    std::size_t slotsPerRound = 0;
    std::size_t totalSlots = 0;
    std::size_t totalUops = 0;

    /** slot (s * qubits + q) -> per-round uop seq, or -1 for Nop. */
    std::vector<std::int32_t> slotUop;
    /** Per-sub-cycle uop seqs and max waveform latency (in-order). */
    std::vector<std::vector<std::uint32_t>> subUops;
    std::vector<std::size_t> subMaxLat;

    Scoreboard scoreboard{1};
    IssueQueue queue{1};

    std::size_t fetchSlot = 0;      ///< next stream slot to fetch
    std::size_t subIdx = 0;         ///< in-order: sub-cycle being fetched
    std::size_t subSlotsLeft = 0;   ///< in-order: slots left in subIdx
    std::uint64_t execDone = 0;     ///< in-order: barrier release cycle
    std::uint64_t maxCompletion = 0;
    std::size_t issuedCount = 0;

    TileSchedule out;

    bool
    finished() const
    {
        if (!active)
            return true;
        return issuedCount == totalUops && fetchSlot == totalSlots;
    }

    isa::PhysOpcode
    opOf(std::uint32_t id) const
    {
        return oracle->uops()[id % numUops].op;
    }

    void
    recordIssue(std::uint64_t cycle, std::uint32_t id)
    {
        if (out.cycles.size() <= cycle)
            out.cycles.resize(cycle + 1);
        out.cycles[cycle].push_back(id);
        ++issuedCount;
        ++out.issued;
    }
};

/** Map a per-round producer edge into the global uop id space,
 *  falling back to the previous round's last toucher of the qubit
 *  when the uop is the qubit's first toucher of its round. */
void
addCrossRoundEdge(TileState &t, std::uint32_t id, std::int32_t prev,
                  std::size_t qubit, std::size_t round)
{
    const std::size_t base = round * t.numUops;
    if (prev >= 0) {
        t.scoreboard.addProducer(id,
                                 std::uint32_t(base + std::size_t(prev)));
    } else if (round > 0) {
        const std::ptrdiff_t last = t.oracle->lastTouch(qubit);
        QUEST_ASSERT(last >= 0, "qubit %zu has a uop but no last "
                                "toucher", qubit);
        t.scoreboard.addProducer(
            id, std::uint32_t((round - 1) * t.numUops
                              + std::size_t(last)));
    }
}

void
initTile(TileState &t, const SchedulerConfig &cfg)
{
    const DependencyOracle &oracle = *t.oracle;
    t.numUops = oracle.uops().size();
    t.slotsPerRound = oracle.depth() * oracle.numQubits();
    t.totalSlots = t.slotsPerRound * t.rounds;
    t.totalUops = t.numUops * t.rounds;

    t.slotUop.assign(t.slotsPerRound, -1);
    t.subUops.assign(oracle.depth(), {});
    t.subMaxLat.assign(oracle.depth(), 1);
    for (const MicroOp &uop : oracle.uops()) {
        t.slotUop[uop.subCycle * oracle.numQubits() + uop.qubit] =
            std::int32_t(uop.seq);
        t.subUops[uop.subCycle].push_back(uop.seq);
        t.subMaxLat[uop.subCycle] =
            std::max(t.subMaxLat[uop.subCycle],
                     uopLatencyCycles(uop.op));
    }

    t.scoreboard = Scoreboard(t.totalUops);
    t.queue = IssueQueue(std::max<std::size_t>(1,
                                               cfg.queueCapacity));
    if (t.mode == SchedulingMode::OutOfOrder) {
        for (std::size_t r = 0; r < t.rounds; ++r) {
            for (const MicroOp &uop : oracle.uops()) {
                const auto id =
                    std::uint32_t(r * t.numUops + uop.seq);
                addCrossRoundEdge(t, id, uop.prevOnQubit, uop.qubit,
                                  r);
                if (uop.hasPartner()
                    && uop.prevOnPartner != uop.prevOnQubit)
                    addCrossRoundEdge(t, id, uop.prevOnPartner,
                                      std::size_t(uop.partner), r);
            }
        }
    }
    t.subSlotsLeft = oracle.depth() > 0 ? oracle.numQubits() : 0;
}

/** Issue phase: returns the number of uops issued this cycle. */
std::size_t
issuePhase(TileState &t, const SchedulerConfig &cfg,
           std::uint64_t cycle)
{
    if (t.mode == SchedulingMode::OutOfOrder) {
        std::size_t issued_now = 0;
        std::size_t pos = 0;
        while (pos < t.queue.size() && issued_now < cfg.issueWidth) {
            const std::uint32_t id = t.queue.entries()[pos];
            if (!t.scoreboard.ready(id, cycle)) {
                ++pos;
                continue;
            }
            const std::uint64_t completes =
                cycle + uopLatencyCycles(t.opOf(id));
            t.scoreboard.markIssued(id, completes);
            t.maxCompletion = std::max(t.maxCompletion, completes);
            t.recordIssue(cycle, id);
            t.queue.erase(pos);
            ++issued_now;
        }
        return issued_now;
    }

    // In-order: when the current sub-cycle is fully fetched and the
    // previous one's slowest waveform has played, fire the master
    // clock for every uop in it at once.
    if (t.subIdx >= t.rounds * t.oracle->depth()
        || t.subSlotsLeft != 0)
        return 0;
    if (cycle < t.execDone) {
        ++t.out.stalls.data; // barrier convoy behind the slow waveform
        return 0;
    }
    const std::size_t local = t.subIdx % t.oracle->depth();
    const std::size_t round = t.subIdx / t.oracle->depth();
    for (const std::uint32_t seq : t.subUops[local]) {
        const auto id =
            std::uint32_t(round * t.numUops + seq);
        t.recordIssue(cycle, id);
    }
    const std::uint64_t completes = cycle + t.subMaxLat[local];
    t.maxCompletion = std::max(t.maxCompletion, completes);
    t.execDone = completes;
    ++t.subIdx;
    if (t.subIdx < t.rounds * t.oracle->depth())
        t.subSlotsLeft = t.oracle->numQubits();
    return std::max<std::size_t>(t.subUops[local].size(), 1);
}

/**
 * Fetch phase: consume up to fetchWidth stream slots out of the
 * shared budget. Every slot — Nops included — costs bandwidth (the
 * stream visits each qubit each sub-cycle); only real uops enter the
 * issue queue. @return slots consumed; sets queue_full when decode
 * blocked on a full queue.
 */
std::size_t
fetchPhase(TileState &t, const SchedulerConfig &cfg,
           std::size_t &bw_left, bool &queue_full)
{
    std::size_t consumed = 0;
    if (t.mode == SchedulingMode::OutOfOrder) {
        while (consumed < cfg.fetchWidth && bw_left > 0
               && t.fetchSlot < t.totalSlots) {
            const std::size_t local = t.fetchSlot % t.slotsPerRound;
            const std::size_t round = t.fetchSlot / t.slotsPerRound;
            const std::int32_t seq = t.slotUop[local];
            if (seq >= 0) {
                if (t.queue.full()) {
                    queue_full = true;
                    break;
                }
                t.queue.push(std::uint32_t(round * t.numUops
                                           + std::size_t(seq)));
            }
            ++t.fetchSlot;
            ++consumed;
            --bw_left;
        }
    } else {
        const std::size_t want =
            std::min({cfg.fetchWidth, bw_left, t.subSlotsLeft});
        t.subSlotsLeft -= want;
        t.fetchSlot += want;
        bw_left -= want;
        consumed = want;
    }
    t.out.slotsFetched += consumed;
    return consumed;
}

} // namespace

DynamicScheduler::DynamicScheduler(const SchedulerConfig &cfg)
    : _cfg(cfg),
      _mPlans(sim::metrics::Registry::global().counter(
          "sched.plans", "issue schedules planned")),
      _mIssued(sim::metrics::Registry::global().counter(
          "sched.issued", "uops issued by planned schedules")),
      _mCycles(sim::metrics::Registry::global().counter(
          "sched.cycles", "pipeline cycles simulated by planned "
                          "schedules")),
      _mStallData(sim::metrics::Registry::global().counter(
          "sched.stall.data",
          "stall cycles: qubit dependence (RAW) or in-order "
          "barrier")),
      _mStallQueueFull(sim::metrics::Registry::global().counter(
          "sched.stall.queue_full",
          "stall cycles: decode blocked on a full issue queue")),
      _mStallFetch(sim::metrics::Registry::global().counter(
          "sched.stall.fetch",
          "stall cycles: issue queue empty, stream still "
          "fetching")),
      _mStallBandwidth(sim::metrics::Registry::global().counter(
          "sched.stall.bandwidth",
          "stall cycles: fetch demanded, arbiter granted "
          "nothing")),
      _hOccupancy(sim::metrics::Registry::global().histogram(
          "sched.queue_occupancy",
          "mean issue-queue occupancy per planned schedule"))
{
    QUEST_ASSERT(cfg.fetchWidth > 0 && cfg.issueWidth > 0
                     && cfg.queueCapacity > 0,
                 "scheduler widths must be positive");
}

void
DynamicScheduler::record(const TileSchedule &tile) const
{
    ++_mPlans;
    _mIssued += tile.issued;
    _mCycles += tile.cycles.size();
    _mStallData += tile.stalls.data;
    _mStallQueueFull += tile.stalls.queueFull;
    _mStallFetch += tile.stalls.fetchStarved;
    _mStallBandwidth += tile.stalls.bandwidthWait;
    if (!tile.cycles.empty())
        _hOccupancy.record(tile.occupancySum / tile.cycles.size());
}

TileSchedule
DynamicScheduler::schedule(const DependencyOracle &oracle,
                           SchedulingMode mode,
                           std::size_t rounds) const
{
    ArbitrationResult r =
        arbitrate({&oracle}, {1}, mode, _cfg.fetchWidth,
                  ArbiterPolicy::RoundRobin, rounds);
    return std::move(r.tiles.at(0));
}

ArbitrationResult
DynamicScheduler::arbitrate(
    const std::vector<const DependencyOracle *> &tiles,
    const std::vector<std::uint8_t> &active, SchedulingMode mode,
    std::size_t shared_bandwidth, ArbiterPolicy policy,
    std::size_t rounds) const
{
    QUEST_ASSERT(tiles.size() == active.size(),
                 "arbitrate: %zu tiles, %zu active flags",
                 tiles.size(), active.size());
    QUEST_ASSERT(shared_bandwidth > 0,
                 "arbitrate needs fetch bandwidth");
    QUEST_ASSERT(rounds > 0, "arbitrate needs rounds");

    std::vector<TileState> states(tiles.size());
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        TileState &t = states[i];
        t.oracle = tiles[i];
        t.active = active[i] != 0 && tiles[i] != nullptr;
        t.mode = mode;
        t.rounds = rounds;
        if (t.active)
            initTile(t, _cfg);
    }

    ArbitrationResult result;
    std::vector<std::size_t> order(states.size());
    std::uint64_t cycle = 0;
    for (;; ++cycle) {
        bool all_done = true;
        for (const TileState &t : states)
            all_done = all_done && t.finished();
        if (all_done)
            break;
        QUEST_ASSERT(cycle < kMaxSimCycles,
                     "arbitration did not converge (livelock?)");

        // Grant order: rotating priority, or lowest fetched
        // watermark first (ties broken by tile index, so the order
        // is deterministic).
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        if (policy == ArbiterPolicy::RoundRobin) {
            std::rotate(order.begin(),
                        order.begin()
                            + std::ptrdiff_t(cycle % order.size()),
                        order.end());
        } else {
            std::stable_sort(
                order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                    return states[a].fetchSlot
                        < states[b].fetchSlot;
                });
        }

        std::size_t bw_left = shared_bandwidth;
        for (const std::size_t i : order) {
            TileState &t = states[i];
            if (!t.active || t.finished())
                continue;

            const std::size_t issued_now =
                issuePhase(t, _cfg, cycle);

            const bool wants_fetch = t.mode
                    == SchedulingMode::OutOfOrder
                ? t.fetchSlot < t.totalSlots
                : t.subSlotsLeft > 0;
            bool queue_full = false;
            std::size_t consumed = 0;
            if (wants_fetch) {
                const std::size_t before = bw_left;
                consumed =
                    fetchPhase(t, _cfg, bw_left, queue_full);
                result.slotsGranted += before - bw_left;
                if (consumed == 0 && !queue_full)
                    ++t.out.stalls.bandwidthWait;
            }
            if (queue_full)
                ++t.out.stalls.queueFull;

            if (t.mode == SchedulingMode::OutOfOrder) {
                if (issued_now == 0 && t.issuedCount < t.totalUops) {
                    if (!t.queue.empty())
                        ++t.out.stalls.data;
                    else if (wants_fetch && consumed > 0)
                        ++t.out.stalls.fetchStarved;
                }
                t.out.occupancySum += t.queue.size();
            }
        }
    }

    result.tiles.reserve(states.size());
    for (TileState &t : states) {
        t.out.makespanCycles = std::size_t(t.maxCompletion);
        result.makespanCycles =
            std::max(result.makespanCycles, t.out.makespanCycles);
        record(t.out);
        result.tiles.push_back(std::move(t.out));
    }
    return result;
}

} // namespace quest::core
