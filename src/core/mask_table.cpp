#include "mask_table.hpp"

namespace quest::core {

MaskTable::MaskTable(const qecc::Lattice &lattice, MaskLayout layout,
                     std::size_t d, sim::StatGroup &parent)
    : _lattice(&lattice), _layout(layout), _full(lattice),
      _coalesced(lattice, d),
      _stats("mask_table"),
      _writes(_stats.scalar("writes", "mask table write operations"))
{
    parent.addChild(_stats);
}

std::size_t
MaskTable::capacityBits() const
{
    return _layout == MaskLayout::Full ? _full.sizeBits()
                                       : _coalesced.sizeBits();
}

bool
MaskTable::masked(std::size_t q) const
{
    return _layout == MaskLayout::Full ? _full.masked(q)
                                       : _coalesced.masked(q);
}

void
MaskTable::apply(const qecc::LogicalQubit &lq, bool masked_value)
{
    if (_layout == MaskLayout::Full)
        _full.apply(lq, masked_value);
    else
        _coalesced.apply(lq, masked_value);
    ++_writes;
}

void
MaskTable::clear()
{
    if (_layout == MaskLayout::Full)
        _full.clear();
    else
        _coalesced.clear();
    ++_writes;
}

std::size_t
MaskTable::maskedQubitCount() const
{
    std::size_t n = 0;
    for (std::size_t q = 0; q < _lattice->numQubits(); ++q)
        if (masked(q))
            ++n;
    return n;
}

} // namespace quest::core
