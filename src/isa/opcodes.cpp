#include "opcodes.hpp"

#include "sim/logging.hpp"

namespace quest::isa {

std::string
physOpcodeName(PhysOpcode op)
{
    switch (op) {
      case PhysOpcode::Nop: return "NOP";
      case PhysOpcode::PrepZ: return "PREP_Z";
      case PhysOpcode::PrepX: return "PREP_X";
      case PhysOpcode::MeasZ: return "MEAS_Z";
      case PhysOpcode::MeasX: return "MEAS_X";
      case PhysOpcode::Hadamard: return "H";
      case PhysOpcode::Phase: return "S";
      case PhysOpcode::CnotN: return "CNOT_N";
      case PhysOpcode::CnotE: return "CNOT_E";
      case PhysOpcode::CnotS: return "CNOT_S";
      case PhysOpcode::CnotW: return "CNOT_W";
      case PhysOpcode::CnotTargetN: return "CNOTT_N";
      case PhysOpcode::CnotTargetE: return "CNOTT_E";
      case PhysOpcode::CnotTargetS: return "CNOTT_S";
      case PhysOpcode::CnotTargetW: return "CNOTT_W";
      case PhysOpcode::Verify: return "VERIFY";
      case PhysOpcode::NumOpcodes: break;
    }
    sim::panic("invalid physical opcode %u", unsigned(op));
}

bool
isTwoQubit(PhysOpcode op)
{
    switch (op) {
      case PhysOpcode::CnotN:
      case PhysOpcode::CnotE:
      case PhysOpcode::CnotS:
      case PhysOpcode::CnotW:
      case PhysOpcode::CnotTargetN:
      case PhysOpcode::CnotTargetE:
      case PhysOpcode::CnotTargetS:
      case PhysOpcode::CnotTargetW:
        return true;
      default:
        return false;
    }
}

bool
isMeasurement(PhysOpcode op)
{
    return op == PhysOpcode::MeasZ || op == PhysOpcode::MeasX;
}

std::string
logicalOpcodeName(LogicalOpcode op)
{
    switch (op) {
      case LogicalOpcode::Nop: return "NOP";
      case LogicalOpcode::PrepZ: return "LPREP_Z";
      case LogicalOpcode::PrepX: return "LPREP_X";
      case LogicalOpcode::MeasZ: return "LMEAS_Z";
      case LogicalOpcode::MeasX: return "LMEAS_X";
      case LogicalOpcode::X: return "LX";
      case LogicalOpcode::Z: return "LZ";
      case LogicalOpcode::Hadamard: return "LH";
      case LogicalOpcode::Phase: return "LS";
      case LogicalOpcode::T: return "LT";
      case LogicalOpcode::Cnot: return "LCNOT";
      case LogicalOpcode::MaskExpand: return "MASK_EXPAND";
      case LogicalOpcode::MaskContract: return "MASK_CONTRACT";
      case LogicalOpcode::MaskMove: return "MASK_MOVE";
      case LogicalOpcode::Braid: return "BRAID";
      case LogicalOpcode::SyncToken: return "SYNC";
      case LogicalOpcode::NumOpcodes: break;
    }
    sim::panic("invalid logical opcode %u", unsigned(op));
}

bool
isMaskInstruction(LogicalOpcode op)
{
    switch (op) {
      case LogicalOpcode::MaskExpand:
      case LogicalOpcode::MaskContract:
      case LogicalOpcode::MaskMove:
      case LogicalOpcode::Braid:
        return true;
      default:
        return false;
    }
}

bool
isTransverse(LogicalOpcode op)
{
    switch (op) {
      case LogicalOpcode::PrepZ:
      case LogicalOpcode::PrepX:
      case LogicalOpcode::MeasZ:
      case LogicalOpcode::MeasX:
      case LogicalOpcode::X:
      case LogicalOpcode::Z:
      case LogicalOpcode::Hadamard:
      case LogicalOpcode::Phase:
        return true;
      default:
        return false;
    }
}

} // namespace quest::isa
