#include "trace.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

#include "sim/logging.hpp"

namespace quest::isa {

namespace {

/** File magic: "QTRACE" + 2-byte format version. */
constexpr char traceMagic[8] = {'Q', 'T', 'R', 'A', 'C', 'E', 0, 1};

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};

using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

std::size_t
LogicalTrace::count(LogicalOpcode op) const
{
    std::size_t n = 0;
    for (const auto &ins : _instrs)
        if (ins.opcode == op)
            ++n;
    return n;
}

double
LogicalTrace::tFraction() const
{
    if (_instrs.empty())
        return 0.0;
    return double(count(LogicalOpcode::T)) / double(_instrs.size());
}

std::vector<std::uint16_t>
LogicalTrace::encodeAll() const
{
    std::vector<std::uint16_t> words;
    words.reserve(_instrs.size());
    for (const auto &ins : _instrs)
        words.push_back(ins.encode());
    return words;
}

LogicalTrace
LogicalTrace::decodeAll(const std::vector<std::uint16_t> &words)
{
    LogicalTrace out;
    for (std::uint16_t w : words)
        out.append(LogicalInstr::decode(w));
    return out;
}

void
LogicalTrace::saveBinary(const std::string &path) const
{
    FileHandle f(std::fopen(path.c_str(), "wb"));
    if (!f)
        sim::fatal("cannot open '%s' for writing", path.c_str());
    const std::vector<std::uint16_t> words = encodeAll();
    if (std::fwrite(traceMagic, 1, sizeof(traceMagic), f.get())
            != sizeof(traceMagic)
        || std::fwrite(words.data(), sizeof(std::uint16_t),
                       words.size(), f.get()) != words.size())
        sim::fatal("short write to '%s'", path.c_str());
}

LogicalTrace
LogicalTrace::loadBinary(const std::string &path)
{
    FileHandle f(std::fopen(path.c_str(), "rb"));
    if (!f)
        sim::fatal("cannot open '%s' for reading", path.c_str());

    char magic[sizeof(traceMagic)];
    if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic)
        || std::memcmp(magic, traceMagic, sizeof(magic)) != 0)
        sim::fatal("'%s' is not a QuEST trace file", path.c_str());

    std::vector<std::uint16_t> words;
    std::uint16_t word = 0;
    while (std::fread(&word, sizeof(word), 1, f.get()) == 1)
        words.push_back(word);
    return decodeAll(words);
}

LogicalTrace
generateApplicationTrace(const TraceGenConfig &cfg)
{
    QUEST_ASSERT(cfg.logicalQubits > 1, "need at least two logical qubits");
    QUEST_ASSERT(cfg.tFraction + cfg.cnotFraction + cfg.maskFraction <= 1.0,
                 "opcode mix fractions exceed 1");

    sim::Rng rng(cfg.seed);
    LogicalTrace trace;
    auto rand_qubit = [&] {
        return static_cast<std::uint16_t>(
            rng.uniformInt(cfg.logicalQubits) & maxLogicalOperand);
    };

    static const LogicalOpcode clifford_pool[] = {
        LogicalOpcode::Hadamard, LogicalOpcode::X, LogicalOpcode::Z,
        LogicalOpcode::Phase, LogicalOpcode::PrepZ, LogicalOpcode::MeasZ,
    };

    for (std::size_t i = 0; i < cfg.numInstructions; ++i) {
        const double u = rng.uniform();
        if (u < cfg.tFraction) {
            trace.append(LogicalOpcode::T, rand_qubit());
        } else if (u < cfg.tFraction + cfg.cnotFraction) {
            trace.append(LogicalOpcode::Cnot, rand_qubit());
        } else if (u < cfg.tFraction + cfg.cnotFraction
                       + cfg.maskFraction) {
            static const LogicalOpcode mask_pool[] = {
                LogicalOpcode::MaskExpand, LogicalOpcode::MaskContract,
                LogicalOpcode::MaskMove,
            };
            trace.append(mask_pool[rng.uniformInt(std::size(mask_pool))],
                         rand_qubit());
        } else {
            trace.append(
                clifford_pool[rng.uniformInt(std::size(clifford_pool))],
                rand_qubit());
        }
    }
    return trace;
}

LogicalTrace
generateDistillationRound(std::uint16_t factory_base_qubit)
{
    // The Bravyi-Kitaev 15-to-1 round on qubits [base, base+15]:
    // prepare 15 noisy |T> inputs, run the Reed-Muller encoder
    // (a fixed Clifford network), measure 14 syndromes and output
    // one distilled state. The exact gate network below is a
    // faithful instruction-count model of that circuit: 16 preps,
    // 15 T injections, 35 CNOT braids, H/S dressing and 15
    // measurements -- 148 instructions, inside the 100-200 window
    // the paper quotes for a typical distillation algorithm.
    LogicalTrace trace;
    const std::uint16_t base = factory_base_qubit;
    auto q = [&](std::uint16_t i) {
        return static_cast<std::uint16_t>((base + i) & maxLogicalOperand);
    };

    // Input preparation.
    for (std::uint16_t i = 0; i < 16; ++i)
        trace.append(LogicalOpcode::PrepZ, q(i));
    for (std::uint16_t i = 1; i < 16; ++i)
        trace.append(LogicalOpcode::T, q(i));

    // Reed-Muller encoding network: each data qubit interacts with
    // the parity structure of RM(1,4). 35 CNOTs with interleaved
    // Hadamards reproduce the circuit's depth profile.
    for (std::uint16_t i = 1; i < 16; ++i)
        trace.append(LogicalOpcode::Hadamard, q(i));
    std::uint16_t cnots = 0;
    for (std::uint16_t i = 1; i < 16 && cnots < 35; ++i) {
        for (std::uint16_t j = 1; j < 16 && cnots < 35; j <<= 1) {
            if ((i & j) && i != j) {
                trace.append(LogicalOpcode::Cnot, q(i));
                ++cnots;
            }
        }
    }
    while (cnots < 35) {
        trace.append(LogicalOpcode::Cnot, q(1 + cnots % 15));
        ++cnots;
    }
    for (std::uint16_t i = 1; i < 16; ++i)
        trace.append(LogicalOpcode::Phase, q(i));

    // Syndrome measurement and output.
    for (std::uint16_t i = 1; i < 16; ++i)
        trace.append(LogicalOpcode::MeasX, q(i));
    trace.append(LogicalOpcode::SyncToken, q(0));

    return trace;
}

} // namespace quest::isa
