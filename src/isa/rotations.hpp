/**
 * @file
 * Arbitrary-rotation decomposition model (paper footnote 7).
 *
 * "Arbitrary rotations are not translated at the MCE. They are
 * either decomposed at run-time (by the master controller) or at
 * compile time (by the Host)." Decomposition turns an Rz(theta)
 * into a Clifford+T word whose length scales as c * log2(1/eps)
 * for target precision eps (Solovay-Kitaev gives polylog; modern
 * direct synthesis achieves c ~= 3 with T-count ~ 3 log2(1/eps),
 * which is the constant used by the quantum-rotation studies the
 * paper cites).
 *
 * The model matters for bandwidth because decomposition multiplies
 * the logical instruction count of rotation-heavy workloads
 * (chemistry, QLS) before anything reaches the MCEs.
 */

#ifndef QUEST_ISA_ROTATIONS_HPP
#define QUEST_ISA_ROTATIONS_HPP

#include <cstdint>

#include "trace.hpp"

namespace quest::isa {

/** Synthesis-quality constants for Clifford+T decomposition. */
struct RotationSynthesis
{
    /** T gates per factor of two in precision (~3 for
     *  repeat-until-success / direct synthesis). */
    double tPerPrecisionBit = 3.0;
    /** Clifford gates interleaved per T gate in the word. */
    double cliffordPerT = 1.5;
};

/** T-count of one Rz(theta) synthesized to precision eps. */
double rotationTCount(double epsilon,
                      RotationSynthesis synth = RotationSynthesis{});

/** Total Clifford+T instruction count of one rotation. */
double rotationInstructionCount(
    double epsilon, RotationSynthesis synth = RotationSynthesis{});

/**
 * Expand a rotation into an explicit Clifford+T instruction word on
 * one logical qubit. The word is deterministic for a fixed angle
 * seed -- run-time decomposition by the master controller can
 * therefore also be cached (the same icache mechanism that absorbs
 * distillation blocks).
 *
 * @param qubit Target logical qubit id.
 * @param angle_seed Identifies the rotation angle (drives the H/S
 *        interleaving pattern).
 * @param epsilon Target precision.
 */
LogicalTrace synthesizeRotation(
    std::uint16_t qubit, std::uint64_t angle_seed, double epsilon,
    RotationSynthesis synth = RotationSynthesis{});

} // namespace quest::isa

#endif // QUEST_ISA_ROTATIONS_HPP
