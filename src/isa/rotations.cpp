#include "rotations.hpp"

#include <cmath>

#include "sim/logging.hpp"
#include "sim/random.hpp"

namespace quest::isa {

double
rotationTCount(double epsilon, RotationSynthesis synth)
{
    QUEST_ASSERT(epsilon > 0.0 && epsilon < 1.0,
                 "precision %g out of range", epsilon);
    return synth.tPerPrecisionBit * std::log2(1.0 / epsilon);
}

double
rotationInstructionCount(double epsilon, RotationSynthesis synth)
{
    const double t = rotationTCount(epsilon, synth);
    return t * (1.0 + synth.cliffordPerT);
}

LogicalTrace
synthesizeRotation(std::uint16_t qubit, std::uint64_t angle_seed,
                   double epsilon, RotationSynthesis synth)
{
    const auto t_count =
        std::size_t(std::ceil(rotationTCount(epsilon, synth)));

    // A deterministic Clifford+T word: the angle seed fixes the
    // interleaving pattern (a stand-in for the binary expansion the
    // synthesis algorithm would produce).
    sim::Rng pattern(angle_seed);
    LogicalTrace word;
    for (std::size_t i = 0; i < t_count; ++i) {
        word.append(LogicalOpcode::T, qubit);
        const auto cliffords =
            std::size_t(std::floor(synth.cliffordPerT))
            + (pattern.bernoulli(synth.cliffordPerT
                                 - std::floor(synth.cliffordPerT))
                   ? 1u : 0u);
        for (std::size_t c = 0; c < cliffords; ++c) {
            word.append(pattern.bernoulli(0.5)
                            ? LogicalOpcode::Hadamard
                            : LogicalOpcode::Phase,
                        qubit);
        }
    }
    return word;
}

} // namespace quest::isa
