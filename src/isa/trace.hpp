/**
 * @file
 * Logical instruction traces.
 *
 * A LogicalTrace is the stream of 2-byte fault-tolerant
 * instructions the master controller dispatches to MCEs. Traces are
 * produced synthetically (the paper consumed ScaffCC/QuRE traces we
 * do not have; see DESIGN.md substitution table) by generators that
 * match the published statistical structure: ILP of 2-3, T-gates
 * every ~3rd instruction, and 100-200-instruction recursive
 * distillation subroutines with deterministic control flow.
 */

#ifndef QUEST_ISA_TRACE_HPP
#define QUEST_ISA_TRACE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "instructions.hpp"
#include "sim/random.hpp"

namespace quest::isa {

/** A stream of logical instructions plus summary statistics. */
class LogicalTrace
{
  public:
    LogicalTrace() = default;

    void append(LogicalInstr instr) { _instrs.push_back(instr); }

    void
    append(LogicalOpcode op, std::uint16_t operand)
    {
        _instrs.push_back(LogicalInstr{op, operand});
    }

    std::size_t size() const { return _instrs.size(); }
    bool empty() const { return _instrs.empty(); }
    const LogicalInstr &at(std::size_t i) const { return _instrs.at(i); }

    auto begin() const { return _instrs.begin(); }
    auto end() const { return _instrs.end(); }

    /** Total wire bytes of the trace (2 bytes per instruction). */
    std::size_t
    bytes() const
    {
        return _instrs.size() * sizeof(std::uint16_t);
    }

    /** Count of instructions with the given opcode. */
    std::size_t count(LogicalOpcode op) const;

    /** Fraction of T instructions in the trace. */
    double tFraction() const;

    /** Serialize to the wire format. */
    std::vector<std::uint16_t> encodeAll() const;

    /** Rebuild a trace from wire words. */
    static LogicalTrace decodeAll(const std::vector<std::uint16_t> &words);

    /**
     * Write the trace to a binary file: an 8-byte magic/version
     * header followed by the 2-byte wire words. Raises SimError on
     * I/O failure.
     */
    void saveBinary(const std::string &path) const;

    /** Load a trace saved with saveBinary. */
    static LogicalTrace loadBinary(const std::string &path);

  private:
    std::vector<LogicalInstr> _instrs;
};

/** Configuration for the synthetic application trace generator. */
struct TraceGenConfig
{
    std::size_t numInstructions = 1000;
    std::size_t logicalQubits = 16;
    double tFraction = 0.28;   ///< paper: T gates are 25-30% of the stream
    double cnotFraction = 0.3; ///< braided two-qubit operations
    double maskFraction = 0.05; ///< explicit mask manipulation
    std::uint64_t seed = 1;
};

/**
 * Generate a synthetic application trace with the published opcode
 * mix (Section 5.2).
 */
LogicalTrace generateApplicationTrace(const TraceGenConfig &cfg);

/**
 * Generate the logical instruction body of one 15-to-1 distillation
 * round: a deterministic sequence of 100-200 instructions
 * (Section 5.3) operating on 16 logical qubits of a T-factory.
 * Identical calls return identical traces — the property the
 * software-managed instruction cache exploits.
 */
LogicalTrace generateDistillationRound(std::uint16_t factory_base_qubit);

} // namespace quest::isa

#endif // QUEST_ISA_TRACE_HPP
