/**
 * @file
 * Instruction formats and encodings.
 *
 * PhysInstr is a micro-op bound to a qubit; in the baseline RAM
 * microcode each stored uop carries opcode + address bits, in the
 * FIFO design the address bits are dropped (Section 4.5), so the
 * storage cost of a uop is design-dependent and computed by the
 * uopBits() helpers here.
 *
 * LogicalInstr is the 2-byte fault-tolerant instruction: a 4-bit
 * opcode plus a 12-bit operand (logical qubit id or mask region id),
 * matching the fixed 2-byte quantum instruction size the paper
 * assumes for the logical cache evaluation.
 */

#ifndef QUEST_ISA_INSTRUCTIONS_HPP
#define QUEST_ISA_INSTRUCTIONS_HPP

#include <cstdint>
#include <string>

#include "opcodes.hpp"

namespace quest::isa {

/** A physical micro-op addressed to a specific qubit. */
struct PhysInstr
{
    PhysOpcode opcode = PhysOpcode::Nop;
    std::uint32_t qubit = 0;

    bool operator==(const PhysInstr &other) const = default;

    std::string toString() const;
};

/** Number of bits needed for a bare opcode field. */
std::size_t opcodeBits(std::size_t opcode_count);

/** Number of address bits needed to name one of n qubits. */
std::size_t addressBits(std::size_t num_qubits);

/**
 * Storage bits per uop in the RAM (random access) microcode design:
 * opcode + address.
 */
std::size_t ramUopBits(std::size_t opcode_count, std::size_t num_qubits);

/**
 * Storage bits per uop in the FIFO / unit-cell designs: opcode only
 * (qubits are addressed implicitly by stream order).
 */
std::size_t fifoUopBits(std::size_t opcode_count);

/** A 2-byte logical instruction. */
struct LogicalInstr
{
    LogicalOpcode opcode = LogicalOpcode::Nop;
    std::uint16_t operand = 0; ///< logical qubit / mask region id (12 bits)

    bool operator==(const LogicalInstr &other) const = default;

    /** Encode into the fixed 2-byte wire format. */
    std::uint16_t encode() const;

    /** Decode from the 2-byte wire format. */
    static LogicalInstr decode(std::uint16_t word);

    std::string toString() const;
};

/** Maximum operand value representable in the 12-bit field. */
inline constexpr std::uint16_t maxLogicalOperand = 0x0FFF;

} // namespace quest::isa

#endif // QUEST_ISA_INSTRUCTIONS_HPP
