/**
 * @file
 * Physical and logical opcode definitions.
 *
 * Physical micro-ops (uops) are what the microcode pipeline latches
 * onto microwave switches: one per qubit per QECC sub-cycle. A uop
 * names a waveform (gate type); two-qubit gates are direction-coded
 * so that a single per-qubit opcode suffices (e.g. CnotN means
 * "CNOT with my northern neighbour, I am the control").
 *
 * Logical instructions are the 2-byte fault-tolerant instructions
 * the master controller dispatches to MCEs (Balensiefer-style ISA,
 * Section 5.3). Transverse instructions apply a physical gate across
 * a logical qubit; mask instructions reshape logical qubit
 * boundaries in the mask table.
 */

#ifndef QUEST_ISA_OPCODES_HPP
#define QUEST_ISA_OPCODES_HPP

#include <cstdint>
#include <string>

namespace quest::isa {

/** Physical micro-op: selects the waveform applied to one qubit. */
enum class PhysOpcode : std::uint8_t
{
    Nop = 0,     ///< identity / idle
    PrepZ,       ///< initialize to |0>
    PrepX,       ///< initialize to |+>
    MeasZ,       ///< Z-basis measurement
    MeasX,       ///< X-basis measurement
    Hadamard,    ///< H gate
    Phase,       ///< S gate
    CnotN,       ///< CNOT with northern neighbour (this qubit control)
    CnotE,       ///< CNOT with eastern neighbour
    CnotS,       ///< CNOT with southern neighbour
    CnotW,       ///< CNOT with western neighbour
    CnotTargetN, ///< CNOT with northern neighbour (this qubit target)
    CnotTargetE,
    CnotTargetS,
    CnotTargetW,
    Verify,      ///< cat-state verification step (Shor-style extraction)

    NumOpcodes,
};

/** Number of distinct physical opcodes. */
inline constexpr std::size_t physOpcodeCount =
    static_cast<std::size_t>(PhysOpcode::NumOpcodes);

/** Mnemonic for a physical opcode. */
std::string physOpcodeName(PhysOpcode op);

/** @return true for two-qubit (directional CNOT) micro-ops. */
bool isTwoQubit(PhysOpcode op);

/** @return true for measurement micro-ops. */
bool isMeasurement(PhysOpcode op);

/**
 * Logical fault-tolerant instruction opcodes. Arbitrary rotations
 * are decomposed into Clifford+T before reaching the MCE (footnote
 * 7 of the paper), so the ISA carries only Cliffords, T, memory ops
 * and mask manipulation.
 */
enum class LogicalOpcode : std::uint8_t
{
    Nop = 0,
    PrepZ,        ///< transverse logical |0> preparation
    PrepX,        ///< transverse logical |+> preparation
    MeasZ,        ///< transverse logical Z measurement
    MeasX,        ///< transverse logical X measurement
    X,            ///< transverse logical X
    Z,            ///< transverse logical Z
    Hadamard,     ///< transverse logical H
    Phase,        ///< logical S
    T,            ///< logical T (consumes one magic state)
    Cnot,         ///< logical CNOT (braiding sequence)
    MaskExpand,   ///< grow a logical qubit boundary (mask instruction)
    MaskContract, ///< shrink a logical qubit boundary
    MaskMove,     ///< move a logical qubit boundary
    Braid,        ///< braid one boundary around another
    SyncToken,    ///< master-controller synchronization token

    NumOpcodes,
};

inline constexpr std::size_t logicalOpcodeCount =
    static_cast<std::size_t>(LogicalOpcode::NumOpcodes);

/** Mnemonic for a logical opcode. */
std::string logicalOpcodeName(LogicalOpcode op);

/** @return true for mask-table-manipulating instructions. */
bool isMaskInstruction(LogicalOpcode op);

/** @return true for transverse (SIMD-across-the-block) instructions. */
bool isTransverse(LogicalOpcode op);

} // namespace quest::isa

#endif // QUEST_ISA_OPCODES_HPP
