#include "instructions.hpp"

#include "sim/logging.hpp"

namespace quest::isa {

std::string
PhysInstr::toString() const
{
    return physOpcodeName(opcode) + " q" + std::to_string(qubit);
}

std::size_t
opcodeBits(std::size_t opcode_count)
{
    QUEST_ASSERT(opcode_count > 0, "opcode count must be positive");
    std::size_t bits = 0;
    std::size_t capacity = 1;
    while (capacity < opcode_count) {
        capacity *= 2;
        ++bits;
    }
    return bits == 0 ? 1 : bits;
}

std::size_t
addressBits(std::size_t num_qubits)
{
    QUEST_ASSERT(num_qubits > 0, "qubit count must be positive");
    std::size_t bits = 0;
    std::size_t capacity = 1;
    while (capacity < num_qubits) {
        capacity *= 2;
        ++bits;
    }
    return bits == 0 ? 1 : bits;
}

std::size_t
ramUopBits(std::size_t opcode_count, std::size_t num_qubits)
{
    return opcodeBits(opcode_count) + addressBits(num_qubits);
}

std::size_t
fifoUopBits(std::size_t opcode_count)
{
    return opcodeBits(opcode_count);
}

std::uint16_t
LogicalInstr::encode() const
{
    QUEST_ASSERT(operand <= maxLogicalOperand,
                 "logical operand %u exceeds 12 bits", operand);
    const auto op = static_cast<std::uint16_t>(opcode);
    QUEST_ASSERT(op < 16, "logical opcode %u exceeds 4 bits", op);
    return static_cast<std::uint16_t>((op << 12) | operand);
}

LogicalInstr
LogicalInstr::decode(std::uint16_t word)
{
    LogicalInstr out;
    const auto op = static_cast<std::uint8_t>(word >> 12);
    QUEST_ASSERT(op < logicalOpcodeCount,
                 "decoded invalid logical opcode %u", unsigned(op));
    out.opcode = static_cast<LogicalOpcode>(op);
    out.operand = word & maxLogicalOperand;
    return out;
}

std::string
LogicalInstr::toString() const
{
    return logicalOpcodeName(opcode) + " L" + std::to_string(operand);
}

} // namespace quest::isa
