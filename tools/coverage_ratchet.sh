#!/usr/bin/env bash
#
# Line-coverage ratchet: measure gcov line coverage for each scope
# listed in the baseline file and fail if any scope fell below its
# recorded floor. Raise a floor when coverage genuinely improves;
# never lower one to make CI pass.
#
# Usage: tools/coverage_ratchet.sh <coverage-build-dir> [baseline]
#
# The build directory must have been configured with
# -DQUEST_COVERAGE=ON and the test suite run (ctest) so the .gcda
# counters exist. Only gcov itself is required; the lcov HTML report
# in CI is an optional extra artifact.
set -euo pipefail

build=${1:?usage: coverage_ratchet.sh <build-dir> [baseline-file]}
baseline=${2:-"$(cd "$(dirname "$0")" && pwd)/coverage_baseline.txt"}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# One pass of gcov over every counter file; -n keeps it to the
# stdout summary ("File '...'" / "Lines executed:P% of N" pairs).
find "$build" -name '*.gcda' -print0 |
    while IFS= read -r -d '' gcda; do
        gcov -n -o "$(dirname "$gcda")" "$gcda" 2>/dev/null || true
    done > "$tmp/gcov.txt"

if ! grep -q '^File ' "$tmp/gcov.txt"; then
    echo "no gcov data found under $build" >&2
    echo "(configure with -DQUEST_COVERAGE=ON and run ctest first)" >&2
    exit 2
fi

status=0
while read -r scope floor; do
    [ -z "$scope" ] && continue
    case "$scope" in \#*) continue ;; esac
    pct=$(awk -v scope="$scope/" '
        /^File /            { want = index($0, scope) > 0 }
        /^Lines executed:/ && want {
            split($0, a, /[:% ]+/)
            covered += a[3] * a[5] / 100.0
            total += a[5]
            want = 0
        }
        END {
            if (total == 0) print "0.0"
            else printf "%.1f", 100.0 * covered / total
        }' "$tmp/gcov.txt")
    printf '%-12s %6s%% (floor %s%%)\n' "$scope" "$pct" "$floor"
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p + 0 < f + 0) }'
    then
        echo "FAIL: $scope line coverage $pct% is below the $floor%" \
             "ratchet" >&2
        status=1
    fi
done < "$baseline"
exit $status
