#!/usr/bin/env bash
#
# Line-coverage ratchet: measure gcov line coverage for each scope
# listed in the baseline file and fail if any scope fell below its
# recorded floor. Raise a floor when coverage genuinely improves;
# never lower one to make CI pass.
#
# Usage: tools/coverage_ratchet.sh <coverage-build-dir> [baseline]
#
# The build directory must have been configured with
# -DQUEST_COVERAGE=ON and the test suite run (ctest) so the .gcda
# counters exist.
#
# Aggregation unions executed/instrumented lines per *source file*
# across all translation units (gcov --json-format + python3). This
# matters for header-defined inline functions: the linker keeps one
# COMDAT copy and discards the rest, so every other TU reports the
# same lines as all-zero — summing per-TU summaries (the old
# behaviour, kept as a fallback when python3 is absent) charges
# those discarded copies against the scope and the measured number
# drifts *down* as more tests include the header.
set -euo pipefail

build=${1:?usage: coverage_ratchet.sh <build-dir> [baseline-file]}
baseline=${2:-"$(cd "$(dirname "$0")" && pwd)/coverage_baseline.txt"}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

if [ -z "$(find "$build" -name '*.gcda' -print -quit)" ]; then
    echo "no gcov data found under $build" >&2
    echo "(configure with -DQUEST_COVERAGE=ON and run ctest first)" >&2
    exit 2
fi

if command -v python3 >/dev/null 2>&1; then
    # One JSON document per .gcda on stdout; the union pass needs
    # per-line hit data, not just the per-file summary.
    find "$build" -name '*.gcda' -print0 |
        while IFS= read -r -d '' gcda; do
            gcov -j -t -o "$(dirname "$gcda")" "$gcda" 2>/dev/null \
                || true
        done > "$tmp/gcov.jsonl"
    python3 - "$baseline" "$tmp/gcov.jsonl" <<'PYEOF'
import json
import sys

instrumented = {}  # path -> set(line)
executed = {}

for doc in open(sys.argv[2]):
    doc = doc.strip()
    if not doc:
        continue
    try:
        data = json.loads(doc)
    except json.JSONDecodeError:
        continue
    for f in data.get("files", []):
        path = f.get("file", "")
        inst = instrumented.setdefault(path, set())
        hits = executed.setdefault(path, set())
        for line in f.get("lines", []):
            n = line.get("line_number")
            inst.add(n)
            if line.get("count", 0) > 0:
                hits.add(n)

status = 0
with open(sys.argv[1]) as fh:
    for row in fh:
        row = row.split("#", 1)[0].strip()
        if not row:
            continue
        scope, floor = row.split()
        frag = scope + "/"
        total = covered = 0
        for path, inst in instrumented.items():
            if frag not in path:
                continue
            total += len(inst)
            covered += len(executed[path] & inst)
        pct = 100.0 * covered / total if total else 0.0
        print("%-12s %6.1f%% (floor %s%%)" % (scope, pct, floor))
        if pct < float(floor):
            print(
                "FAIL: %s line coverage %.1f%% is below the %s%% "
                "ratchet" % (scope, pct, floor),
                file=sys.stderr,
            )
            status = 1
sys.exit(status)
PYEOF
    exit $?
fi

echo "warning: python3 not found, falling back to per-TU summary" \
     "aggregation (COMDAT copies dilute headers)" >&2

# One pass of gcov over every counter file; -n keeps it to the
# stdout summary ("File '...'" / "Lines executed:P% of N" pairs).
find "$build" -name '*.gcda' -print0 |
    while IFS= read -r -d '' gcda; do
        gcov -n -o "$(dirname "$gcda")" "$gcda" 2>/dev/null || true
    done > "$tmp/gcov.txt"

status=0
while read -r scope floor; do
    [ -z "$scope" ] && continue
    case "$scope" in \#*) continue ;; esac
    pct=$(awk -v scope="$scope/" '
        /^File /            { want = index($0, scope) > 0 }
        /^Lines executed:/ && want {
            split($0, a, /[:% ]+/)
            covered += a[3] * a[5] / 100.0
            total += a[5]
            want = 0
        }
        END {
            if (total == 0) print "0.0"
            else printf "%.1f", 100.0 * covered / total
        }' "$tmp/gcov.txt")
    printf '%-12s %6s%% (floor %s%%)\n' "$scope" "$pct" "$floor"
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p + 0 < f + 0) }'
    then
        echo "FAIL: $scope line coverage $pct% is below the $floor%" \
             "ratchet" >&2
        status=1
    fi
done < "$baseline"
exit $status
