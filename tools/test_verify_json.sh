#!/bin/sh
# Schema smoke test for `quest verify --json`.
#
# The diagnostics JSON is a machine interface (CI artifacts, the
# verify-timing job, downstream dashboards), so its shape is pinned
# here: the top-level keys must stay stable, the --timing section
# must carry its full row schema (bounds, observed cycles, ratio,
# deadline slack, gate verdicts), the document must parse as JSON,
# and a failing verification must still write the document while
# exiting nonzero.
#
# Usage: test_verify_json.sh /path/to/quest
set -eu

quest="${1:?usage: test_verify_json.sh /path/to/quest}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# 1. A clean single-config run with --timing: exit 0, every stable
#    key present.
"$quest" verify --protocol Steane --design RAM --timing --tiles 2 \
    --rounds 2 --json "$tmp/ok.json" > /dev/null

for key in '"ok"' '"errors"' '"warnings"' '"passes"' \
           '"diagnostics"' '"timing"'; do
    grep -q "$key" "$tmp/ok.json" || {
        echo "FAIL: missing top-level key $key" >&2
        cat "$tmp/ok.json" >&2
        exit 1
    }
done
grep -q '"ok": true' "$tmp/ok.json"

# The seven-pass catalogue must list the timing passes.
grep -q '"timing"' "$tmp/ok.json"
grep -q '"contention"' "$tmp/ok.json"

# 2. Every --timing row field the CI sweep consumes.
for key in '"protocol"' '"design"' '"mode"' '"tiles"' '"rounds"' \
           '"critical_path_cycles"' '"width_bound_cycles"' \
           '"bound_cycles"' '"observed_cycles"' '"ratio"' \
           '"deadline_cycles"' '"slack_cycles"' '"sound"' \
           '"tight"'; do
    grep -q "$key" "$tmp/ok.json" || {
        echo "FAIL: missing timing-row key $key" >&2
        cat "$tmp/ok.json" >&2
        exit 1
    }
done
grep -q '"sound": true' "$tmp/ok.json"
grep -q '"tight": true' "$tmp/ok.json"

# 3. The document is well-formed JSON (when python3 is available).
if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
        "$tmp/ok.json"
fi

# 4. A failing verification (d=5 RAM blows the capacity budget)
#    still writes the document — with ok:false and a diagnostic —
#    and exits nonzero.
if "$quest" verify --protocol Steane --design RAM --distance 5 \
    --json "$tmp/fail.json" > /dev/null 2>&1; then
    echo "FAIL: verify exited zero on a capacity violation" >&2
    exit 1
fi
grep -q '"ok": false' "$tmp/fail.json"
grep -q '"budget.capacity"' "$tmp/fail.json"
if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
        "$tmp/fail.json"
fi

echo "quest verify --json schema: OK"
