/**
 * @file
 * quest — command-line front end to the QuEST library.
 *
 * Subcommands:
 *   estimate   QuRE-style resource & bandwidth estimation for a
 *              workload (the Figure 2/6/13/14 pipeline).
 *   microcode  microcode design-space report for every syndrome
 *              protocol (the Table-2 search).
 *   trace-gen  synthesize an application trace to a binary file.
 *   replay     run a trace file through the cycle-level system and
 *              print the bus ledger.
 *   simulate   surface-code memory experiment (logical error rate).
 *   verify     static verification of control-plane artifacts
 *              (microcode equivalence, budgets, hazards, ISA) with
 *              machine-readable diagnostics.
 *   serve      fleet manager: farm a Monte-Carlo sweep to workers
 *              over TCP (bit-identical to a local run).
 *   worker     fleet worker: pull tasks from a manager; chaos
 *              flags inject seeded failures for testing.
 *   submit     send a sweep job to a waiting manager and print the
 *              merged CSV it returns.
 *
 * Run `quest <subcommand> --help` for the flags of each.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/system.hpp"
#include "decode/pipeline.hpp"
#include "decode/streaming.hpp"
#include "fleet/manager.hpp"
#include "fleet/worker.hpp"
#include "isa/trace.hpp"
#include "qecc/extractor.hpp"
#include "sim/metrics.hpp"
#include "sim/table.hpp"
#include "sim/trace.hpp"
#include "verify/program.hpp"
#include "verify/timing.hpp"
#include "verify/verifier.hpp"
#include "workloads/estimator.hpp"

namespace {

using namespace quest;

/** Tiny --flag=value / --flag value option parser. */
class Options
{
  public:
    Options(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0) {
                std::fprintf(stderr, "unexpected argument '%s'\n",
                             arg.c_str());
                std::exit(2);
            }
            arg = arg.substr(2);
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                _values[arg.substr(0, eq)] = arg.substr(eq + 1);
            } else if (i + 1 < argc
                       && std::strncmp(argv[i + 1], "--", 2) != 0) {
                _values[arg] = argv[++i];
            } else {
                _values[arg] = "1";
            }
        }
    }

    bool has(const std::string &key) const
    {
        return _values.contains(key);
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        const auto it = _values.find(key);
        return it == _values.end() ? fallback : it->second;
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        const auto it = _values.find(key);
        return it == _values.end() ? fallback
                                   : std::atof(it->second.c_str());
    }

    long
    getInt(const std::string &key, long fallback) const
    {
        const auto it = _values.find(key);
        return it == _values.end() ? fallback
                                   : std::atol(it->second.c_str());
    }

  private:
    std::map<std::string, std::string> _values;
};

tech::Technology
parseTechnology(const std::string &name)
{
    for (tech::Technology t : tech::allTechnologies)
        if (tech::technologyName(t) == name)
            return t;
    sim::fatal("unknown technology '%s' (ExperimentalS, ProjectedF, "
               "ProjectedD)", name.c_str());
}

qecc::Protocol
parseProtocol(const std::string &name)
{
    for (qecc::Protocol p : qecc::allProtocols)
        if (qecc::protocolName(p) == name)
            return p;
    sim::fatal("unknown protocol '%s' (Steane, Shor, SC-17, SC-13)",
               name.c_str());
}

core::MicrocodeDesign
parseDesign(const std::string &name)
{
    for (core::MicrocodeDesign d : core::allMicrocodeDesigns)
        if (core::microcodeDesignName(d) == name)
            return d;
    sim::fatal("unknown design '%s' (RAM, FIFO, Unit-cell)",
               name.c_str());
}

workloads::Workload
parseWorkload(const Options &opts)
{
    if (opts.has("shor"))
        return workloads::shor(std::size_t(opts.getInt("shor", 512)));
    const std::string name = opts.get("workload", "SHOR-512");
    for (const auto &w : workloads::workloadSuite())
        if (w.name == name)
            return w;
    sim::fatal("unknown workload '%s' (BWT, BF, GSE, FeMoCo, QLS, "
               "SHOR-512, TFP; or --shor BITS)", name.c_str());
}

int
cmdEstimate(const Options &opts)
{
    workloads::EstimatorConfig cfg;
    cfg.physicalErrorRate = opts.getDouble("error-rate", 1e-4);
    cfg.technology = parseTechnology(opts.get("tech", "ProjectedD"));
    cfg.protocol = parseProtocol(opts.get("protocol", "Steane"));

    const workloads::Workload w = parseWorkload(opts);
    const auto r = workloads::ResourceEstimator(cfg).estimate(w);

    sim::Table table("estimate: " + w.name);
    table.header({ "quantity", "value" });
    table.row({ "logical qubits (app)",
                sim::formatCount(r.appLogicalQubits) });
    table.row({ "logical qubits (factories)",
                sim::formatCount(r.factoryLogicalQubits) });
    table.row({ "code distance", std::to_string(r.codeDistance) });
    table.row({ "physical qubits",
                sim::formatCount(r.physicalQubits) });
    table.row({ "T factories",
                std::to_string(r.tPlan.factories) });
    table.row({ "execution time",
                sim::formatSeconds(r.execTimeSeconds) });
    table.row({ "baseline bandwidth",
                sim::formatRate(r.baselineBandwidth) });
    table.row({ "QuEST (MCE) bandwidth",
                sim::formatRate(r.mceBandwidth) });
    table.row({ "QuEST (+icache) bandwidth",
                sim::formatRate(r.cachedBandwidth) });
    table.row({ "MCE-only savings",
                sim::formatCount(r.mceSavings()) });
    table.row({ "total savings",
                sim::formatCount(r.totalSavings()) });
    table.print(std::cout);
    return 0;
}

int
cmdMicrocode(const Options &opts)
{
    const auto capacity =
        std::size_t(opts.getInt("capacity", 4096));
    const tech::Technology technology =
        parseTechnology(opts.get("tech", "ProjectedD"));
    const tech::JJMemoryModel mem;

    sim::Table table("microcode design space @ "
                     + std::to_string(capacity) + " bits");
    table.header({ "syndrome", "optimal config", "qubits/MCE",
                   "JJs", "power (uW)" });
    for (qecc::Protocol p : qecc::allProtocols) {
        const core::MicrocodeModel model(qecc::protocolSpec(p),
                                         technology);
        const tech::MemoryConfig best = model.optimalConfig(capacity);
        char power[32];
        std::snprintf(power, sizeof(power), "%.1f",
                      mem.powerUw(best));
        table.row({
            qecc::protocolName(p),
            best.toString(),
            std::to_string(model.servicedQubits(
                core::MicrocodeDesign::UnitCell, best)),
            std::to_string(mem.jjCount(best)),
            power,
        });
    }
    table.print(std::cout);
    return 0;
}

int
cmdTraceGen(const Options &opts)
{
    isa::TraceGenConfig cfg;
    cfg.numInstructions =
        std::size_t(opts.getInt("instructions", 10000));
    cfg.logicalQubits = std::size_t(opts.getInt("qubits", 16));
    cfg.seed = std::uint64_t(opts.getInt("seed", 1));
    cfg.maskFraction = opts.getDouble("mask-fraction", 0.0);
    const std::string out = opts.get("out", "trace.qtrace");

    const isa::LogicalTrace trace = generateApplicationTrace(cfg);
    trace.saveBinary(out);
    std::printf("wrote %zu instructions (%zu bytes, T fraction "
                "%.2f) to %s\n",
                trace.size(), trace.bytes(), trace.tFraction(),
                out.c_str());
    return 0;
}

int
cmdReplay(const Options &opts)
{
    const std::string path = opts.get("trace", "trace.qtrace");
    const auto mces = std::size_t(opts.getInt("mces", 4));
    const auto rounds = std::size_t(opts.getInt("rounds", 1024));

    const isa::LogicalTrace trace = isa::LogicalTrace::loadBinary(path);

    core::MasterConfig cfg;
    cfg.numMces = mces;
    cfg.mce = core::tileConfigForLogicalQubits(
        std::size_t(opts.getInt("distance", 3)));
    cfg.mce.errorRates = quantum::ErrorRates{
        opts.getDouble("error-rate", 1e-4), 0, 0, 0,
        opts.getDouble("error-rate", 1e-4)};

    // Classical fault model: a uniform per-site rate switches on the
    // whole resilience stack (ARQ retries, scrubbing, watchdog,
    // decode-deadline fallback).
    // Pre-flight gate: statically verify every tile's microcode,
    // budget and hazard properties before the system accepts it.
    if (opts.has("verify-on-load")) {
        verify::installPreflightGate();
        cfg.mce.verifyOnLoad = true;
    }

    const double fault_rate = opts.getDouble("fault-rate", 0.0);
    if (fault_rate > 0.0) {
        cfg.faults = sim::FaultConfig::uniform(
            fault_rate,
            std::uint64_t(opts.getInt("fault-seed", 0x5EEDFAB5)));
        cfg.scrubIntervalRounds = 64;
        cfg.heartbeatIntervalRounds = 16;
        cfg.modelDecodeDeadline = true;
    }

    core::QuestSystem system(cfg);
    system.placeLogicalQubits();
    system.runMixedWorkload(trace,
                            isa::generateDistillationRound(0),
                            rounds);
    std::printf("%s\n", system.report().toString().c_str());
    if (opts.has("faults-report"))
        system.master().faultStats().dump(std::cout);
    return 0;
}

int
cmdSimulate(const Options &opts)
{
    const auto d = std::size_t(opts.getInt("distance", 5));
    const double p = opts.getDouble("error-rate", 1e-3);
    const int trials = int(opts.getInt("trials", 2000));
    // --stream-window N decodes each shot through the streaming
    // sliding-window decoder instead of the offline pipeline;
    // --stream-stride M sets the commit distance (default N/2).
    const auto stream_window =
        std::size_t(opts.getInt("stream-window", 0));
    decode::StreamConfig stream_cfg;
    if (stream_window) {
        stream_cfg.windowRounds = stream_window;
        stream_cfg.strideRounds =
            std::size_t(opts.getInt("stream-stride", 0));
        if (stream_cfg.strideRounds == 0)
            stream_cfg.strideRounds =
                std::max<std::size_t>(1, stream_window / 2);
    }

    const qecc::Lattice lattice = qecc::Lattice::forDistance(d);
    const auto schedule = qecc::buildRoundSchedule(
        lattice, qecc::protocolSpec(
                     parseProtocol(opts.get("protocol", "Steane"))));
    const qecc::SyndromeExtractor extractor(schedule);
    decode::DecoderPipeline pipeline(lattice);
    sim::Rng rng(std::uint64_t(opts.getInt("seed", 1)));

    int failures = 0;
    for (int t = 0; t < trials; ++t) {
        quantum::PauliFrame frame(lattice.numQubits());
        quantum::ErrorChannel channel(
            quantum::ErrorRates{p, 0, 0, 0, p}, rng);
        auto history = extractor.runRounds(frame, &channel, d);
        history.push_back(extractor.runRound(frame, nullptr));
        decode::Correction corr;
        if (stream_window) {
            // One streamer per shot: rounds are pushed as extracted
            // and the committed corrections accumulate.
            decode::StreamingDecoder streamer(extractor, stream_cfg);
            for (const auto &round : history)
                if (auto commit = streamer.pushRound(round))
                    corr.merge(commit->correction);
            if (auto commit = streamer.finish())
                corr.merge(commit->correction);
        } else {
            const auto events =
                decode::extractDetectionEvents(history, extractor);
            corr = pipeline.decode(events);
        }
        decode::applyCorrection(frame, corr);

        bool failed = extractor.runRound(frame, nullptr).any();
        if (!failed) {
            std::size_t x = 0, z = 0;
            for (const qecc::Coord c : lattice.logicalZSupport())
                x += frame.xError(lattice.index(c)) ? 1 : 0;
            for (const qecc::Coord c : lattice.logicalXSupport())
                z += frame.zError(lattice.index(c)) ? 1 : 0;
            failed = (x % 2) || (z % 2);
        }
        failures += failed ? 1 : 0;
    }
    if (stream_window) {
        const auto &lag =
            sim::metrics::Registry::global().histogram(
                "decode.stream.lag_rounds",
                "rounds decoding ran behind extraction, per pushed "
                "round");
        std::printf(
            "d=%zu p=%g trials=%d window=%zu stride=%zu "
            "logical_error_rate=%.3e lag_p50=%.0f lag_p99=%.0f\n",
            d, p, trials, stream_cfg.windowRounds,
            stream_cfg.strideRounds,
            double(failures) / double(trials), lag.percentile(0.5),
            lag.percentile(0.99));
        return 0;
    }
    std::printf("d=%zu p=%g trials=%d logical_error_rate=%.3e "
                "lut_coverage=%.1f%%\n",
                d, p, trials, double(failures) / double(trials),
                pipeline.localCoverage() * 100.0);
    return 0;
}

/** One --timing differential row: static bound vs dynamic run. */
struct TimingRow
{
    std::string protocol;
    std::string design;
    std::string mode;
    std::size_t tiles = 1;
    std::size_t rounds = 1;
    verify::TimingBound bound;
    std::size_t observedCycles = 0;
    std::size_t deadlineCycles = 0; // budget over all rounds
    bool sound = false;
    bool tight = false;
};

/** Syndrome-round deadline of a tile config, in JJ-clock cycles. */
std::size_t
roundDeadlineCycles(const core::MceConfig &cfg)
{
    const qecc::ProtocolSpec &spec = qecc::protocolSpec(cfg.protocol);
    return std::size_t(
        sim::ticksToSeconds(
            spec.roundDuration(tech::gateLatencies(cfg.technology)))
        * tech::jjClockHz);
}

/**
 * The --timing differential for one tile config: bound the round
 * program statically under `mode`, run the dynamic scheduler on the
 * same program (arbitrated over shared fetch when --tiles > 1) and
 * compare. Soundness (bound >= observed) must hold everywhere; the
 * 1.5x tightness gate applies uncontended, where the bound claims
 * to track the real pipeline rather than a worst-case grant phase.
 */
TimingRow
runTimingDifferential(const core::MceConfig &cfg,
                      const verify::TileBundle &bundle,
                      core::SchedulingMode mode, std::size_t tiles,
                      std::size_t rounds)
{
    const verify::ExpandedStream stream =
        verify::expandRam(bundle.artifacts.ram);
    const verify::DependencyOracle dep(
        *bundle.artifacts.lattice, stream.qubits, stream.subCycles);
    const core::SchedulerConfig &scfg = cfg.sched;
    const std::size_t bandwidth = scfg.fetchWidth;

    TimingRow row;
    row.protocol = qecc::protocolName(cfg.protocol);
    row.design = core::microcodeDesignName(cfg.microcodeDesign);
    row.mode = core::schedulingModeName(mode);
    row.tiles = tiles;
    row.rounds = rounds;
    row.deadlineCycles = roundDeadlineCycles(cfg) * rounds;

    const verify::FetchGrant grant = verify::worstCaseGrant(
        tiles, scfg.fetchWidth, bandwidth,
        core::ArbiterPolicy::RoundRobin);
    row.bound = verify::TimingOracle(scfg).bound(
        dep, mode, rounds, grant);

    const core::DynamicScheduler sched(scfg);
    if (tiles <= 1) {
        row.observedCycles =
            sched.schedule(dep, mode, rounds).cycles.size();
    } else {
        const std::vector<const verify::DependencyOracle *> fleet(
            tiles, &dep);
        const std::vector<std::uint8_t> active(tiles, 1);
        const core::ArbitrationResult r = sched.arbitrate(
            fleet, active, mode, bandwidth,
            core::ArbiterPolicy::RoundRobin, rounds);
        for (const core::TileSchedule &t : r.tiles)
            row.observedCycles =
                std::max(row.observedCycles, t.cycles.size());
    }

    row.sound = row.bound.totalBoundCycles >= row.observedCycles;
    row.tight = tiles > 1
        || double(row.bound.totalBoundCycles)
            <= 1.5 * double(row.observedCycles);
    return row;
}

/** Serialize the --timing rows as the JSON "timing" section. */
std::string
timingJsonSection(const std::vector<TimingRow> &rows)
{
    std::ostringstream os;
    os << "\"timing\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const TimingRow &r = rows[i];
        os << (i ? "," : "") << "\n    {"
           << "\"protocol\": \"" << r.protocol << "\", "
           << "\"design\": \"" << r.design << "\", "
           << "\"mode\": \"" << r.mode << "\", "
           << "\"tiles\": " << r.tiles << ", "
           << "\"rounds\": " << r.rounds << ", "
           << "\"critical_path_cycles\": "
           << r.bound.criticalPathCycles << ", "
           << "\"width_bound_cycles\": "
           << r.bound.widthBoundCycles << ", "
           << "\"bound_cycles\": " << r.bound.totalBoundCycles
           << ", "
           << "\"observed_cycles\": " << r.observedCycles << ", "
           << "\"ratio\": "
           << (r.observedCycles
                   ? double(r.bound.totalBoundCycles)
                       / double(r.observedCycles)
                   : 0.0)
           << ", "
           << "\"deadline_cycles\": " << r.deadlineCycles << ", "
           << "\"slack_cycles\": "
           << (long(r.deadlineCycles)
               - long(r.bound.totalBoundCycles))
           << ", "
           << "\"sound\": " << (r.sound ? "true" : "false") << ", "
           << "\"tight\": " << (r.tight ? "true" : "false") << "}";
    }
    if (!rows.empty())
        os << "\n  ";
    os << "]";
    return os.str();
}

int
cmdVerify(const Options &opts)
{
    std::vector<qecc::Protocol> protocols;
    if (opts.has("protocol"))
        protocols.push_back(
            parseProtocol(opts.get("protocol", "Steane")));
    else
        protocols.assign(std::begin(qecc::allProtocols),
                         std::end(qecc::allProtocols));

    std::vector<core::MicrocodeDesign> designs;
    if (opts.has("design"))
        designs.push_back(parseDesign(opts.get("design", "RAM")));
    else
        designs.assign(std::begin(core::allMicrocodeDesigns),
                       std::end(core::allMicrocodeDesigns));

    std::optional<isa::LogicalTrace> trace;
    if (opts.has("trace"))
        trace = isa::LogicalTrace::loadBinary(
            opts.get("trace", "trace.qtrace"));

    const bool timing = opts.has("timing");
    const auto timingTiles = std::size_t(opts.getInt("tiles", 1));
    const auto timingRounds = std::size_t(opts.getInt("rounds", 1));
    std::vector<TimingRow> timingRows;

    verify::Report combined;
    for (const qecc::Protocol p : protocols) {
        for (const core::MicrocodeDesign d : designs) {
            core::MceConfig cfg;
            cfg.distance = std::size_t(opts.getInt("distance", 3));
            cfg.protocol = p;
            cfg.technology =
                parseTechnology(opts.get("tech", "ProjectedD"));
            cfg.microcodeDesign = d;
            cfg.memoryConfig.channels =
                std::size_t(opts.getInt("channels", 4));
            cfg.memoryConfig.bankBits =
                std::size_t(opts.getInt("bank-bits", 1024));
            cfg.icacheCapacity =
                std::size_t(opts.getInt("icache", 1024));

            const std::string label = qecc::protocolName(p) + "/"
                + core::microcodeDesignName(d);
            verify::TileBundle bundle =
                verify::buildTileBundle(cfg, label);
            bundle.artifacts.trace = trace;
            bundle.artifacts.rotationEpsilon =
                opts.getDouble("epsilon", 0.0);
            if (timing) {
                bundle.artifacts.timing.rounds = timingRounds;
                bundle.artifacts.timing.contentionTiles =
                    timingTiles;
            }
            combined.merge(
                verify::Verifier().run(bundle.artifacts));
            if (timing)
                for (const core::SchedulingMode mode :
                     {core::SchedulingMode::InOrder,
                      core::SchedulingMode::OutOfOrder})
                    timingRows.push_back(runTimingDifferential(
                        cfg, bundle, mode, timingTiles,
                        timingRounds));
        }
    }

    bool timingGatesPass = true;
    if (timing) {
        sim::Table table("timing: static bound vs dynamic run ("
                         + std::to_string(timingTiles) + " tile(s), "
                         + std::to_string(timingRounds)
                         + " round(s))");
        table.header({ "config", "mode", "cp", "width", "bound",
                       "observed", "ratio", "deadline", "slack" });
        for (const TimingRow &r : timingRows) {
            char ratio[32];
            std::snprintf(ratio, sizeof(ratio), "%.3f",
                          r.observedCycles
                              ? double(r.bound.totalBoundCycles)
                                  / double(r.observedCycles)
                              : 0.0);
            table.row({
                r.protocol + "/" + r.design,
                r.mode,
                std::to_string(r.bound.criticalPathCycles),
                std::to_string(r.bound.widthBoundCycles),
                std::to_string(r.bound.totalBoundCycles),
                std::to_string(r.observedCycles),
                ratio,
                std::to_string(r.deadlineCycles),
                std::to_string(long(r.deadlineCycles)
                               - long(r.bound.totalBoundCycles)),
            });
            if (!r.sound) {
                timingGatesPass = false;
                std::fprintf(stderr,
                             "timing: UNSOUND bound for %s/%s %s: "
                             "bound %zu < observed %zu\n",
                             r.protocol.c_str(), r.design.c_str(),
                             r.mode.c_str(),
                             r.bound.totalBoundCycles,
                             r.observedCycles);
            }
            if (!r.tight) {
                timingGatesPass = false;
                std::fprintf(stderr,
                             "timing: LOOSE bound for %s/%s %s: "
                             "bound %zu > 1.5x observed %zu\n",
                             r.protocol.c_str(), r.design.c_str(),
                             r.mode.c_str(),
                             r.bound.totalBoundCycles,
                             r.observedCycles);
            }
        }
        table.print(std::cout);
    }

    if (opts.has("json")) {
        const std::string path = opts.get("json", "verify.json");
        std::ofstream os(path);
        if (!os)
            sim::fatal("cannot write diagnostics to %s",
                       path.c_str());
        combined.writeJson(os, 0,
                           timing ? timingJsonSection(timingRows)
                                  : std::string());
        std::fprintf(stderr, "wrote diagnostics to %s\n",
                     path.c_str());
    }
    std::printf("%s\n", combined.toString().c_str());
    return combined.ok() && timingGatesPass ? 0 : 1;
}

/** Split a comma-separated flag value ("3,5,7"). */
std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? value.size() : comma;
        if (end > start)
            parts.push_back(value.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return parts;
}

/** Build a SweepSpec from the shared sweep grid flags. */
fleet::SweepSpec
sweepSpecFromFlags(const Options &opts)
{
    fleet::SweepSpec spec;
    spec.protocols.clear();
    for (const std::string &name :
         splitList(opts.get("protocols", "Steane")))
        spec.protocols.push_back(parseProtocol(name));
    spec.distances.clear();
    for (const std::string &d :
         splitList(opts.get("distances", "3,5")))
        spec.distances.push_back(std::size_t(std::atol(d.c_str())));
    spec.errorRates.clear();
    for (const std::string &p :
         splitList(opts.get("error-rates", "1e-3")))
        spec.errorRates.push_back(std::atof(p.c_str()));
    spec.trialsPerPoint = std::uint64_t(opts.getInt("trials", 256));
    spec.grain = std::uint64_t(opts.getInt("grain", 64));
    spec.seed = std::uint64_t(opts.getInt("seed", 1));
    if (!spec.valid())
        sim::fatal("invalid sweep grid: need non-empty axes, odd "
                   "distances in [3,63], error rates in [0,1], "
                   "positive --trials/--grain");
    return spec;
}

void
writeSweepOutputs(const sim::Table &table, const Options &opts)
{
    table.print(std::cout);
    if (opts.has("csv")) {
        const std::string path = opts.get("csv", "sweep.csv");
        std::ofstream os(path);
        if (!os)
            sim::fatal("cannot write CSV to %s", path.c_str());
        table.printCsv(os);
        std::fprintf(stderr, "wrote CSV to %s\n", path.c_str());
    }
}

int
cmdServe(const Options &opts)
{
    if (opts.has("local")) {
        // Degraded mode: no sockets at all, same bytes out.
        writeSweepOutputs(
            fleet::runSweepLocal(sweepSpecFromFlags(opts)), opts);
        return 0;
    }

    fleet::FleetConfig cfg;
    cfg.port = std::uint16_t(opts.getInt("port", 0));
    cfg.leaseMs = int(opts.getInt("lease-ms", cfg.leaseMs));
    cfg.backoffBaseMs =
        int(opts.getInt("backoff-ms", cfg.backoffBaseMs));
    cfg.backoffJitter =
        opts.getDouble("backoff-jitter", cfg.backoffJitter);
    cfg.redispatchBudget =
        int(opts.getInt("budget", cfg.redispatchBudget));
    cfg.stragglerFactor =
        opts.getDouble("straggler-factor", cfg.stragglerFactor);
    cfg.heartbeatMs =
        int(opts.getInt("heartbeat-ms", cfg.heartbeatMs));
    cfg.localFallbackMs =
        int(opts.getInt("fallback-ms", cfg.localFallbackMs));
    cfg.schedulerSeed = std::uint64_t(
        opts.getInt("scheduler-seed", long(cfg.schedulerSeed)));
    cfg.submitTimeoutMs =
        int(opts.getInt("submit-timeout-ms", -1));

    fleet::Manager manager(cfg);
    if (opts.has("port-file")) {
        // The orchestrator (CI script, tests) learns the ephemeral
        // port from this file; write it only once we are bound.
        const std::string path = opts.get("port-file", "port");
        std::ofstream os(path);
        if (!os)
            sim::fatal("cannot write port file %s", path.c_str());
        os << manager.port() << "\n";
    }
    std::fprintf(stderr, "fleet: listening on 127.0.0.1:%u\n",
                 unsigned(manager.port()));

    if (opts.has("await-job"))
        return manager.serveOnce() ? 0 : 1;

    writeSweepOutputs(manager.runSweep(sweepSpecFromFlags(opts)),
                      opts);
    return 0;
}

/** Resolve --port / --port-file into a port, waiting for the file. */
std::uint16_t
resolvePort(const Options &opts, int timeout_ms)
{
    if (!opts.has("port-file"))
        return std::uint16_t(opts.getInt("port", 0));
    const std::string path = opts.get("port-file", "port");
    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::milliseconds(timeout_ms);
    for (;;) {
        std::ifstream is(path);
        long port = 0;
        if (is && (is >> port) && port > 0 && port < 65536)
            return std::uint16_t(port);
        if (std::chrono::steady_clock::now() >= deadline)
            sim::fatal("no usable port in %s after %d ms",
                       path.c_str(), timeout_ms);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    }
}

int
cmdWorker(const Options &opts)
{
    fleet::WorkerConfig cfg;
    cfg.host = opts.get("host", "127.0.0.1");
    cfg.connectTimeoutMs =
        int(opts.getInt("connect-timeout-ms", cfg.connectTimeoutMs));
    cfg.port = resolvePort(opts, cfg.connectTimeoutMs);
    cfg.name = opts.get("name", "worker");
    cfg.heartbeatMs =
        int(opts.getInt("heartbeat-ms", cfg.heartbeatMs));
    cfg.maxTasks = std::uint64_t(opts.getInt("max-tasks", 0));
    cfg.stallMs = int(opts.getInt("stall-ms", cfg.stallMs));

    cfg.chaos.seed =
        std::uint64_t(opts.getInt("chaos-seed", 0x5EEDFAB5));
    cfg.chaos.rate(sim::FaultSite::WorkerKill) =
        opts.getDouble("chaos-kill", 0.0);
    cfg.chaos.rate(sim::FaultSite::WorkerStall) =
        opts.getDouble("chaos-stall", 0.0);
    cfg.chaos.rate(sim::FaultSite::ResultDrop) =
        opts.getDouble("chaos-drop", 0.0);
    cfg.chaos.rate(sim::FaultSite::DuplicateResult) =
        opts.getDouble("chaos-dup", 0.0);

    const fleet::WorkerExit rc = fleet::runWorker(cfg);
    if (rc == fleet::WorkerExit::Shutdown
        || rc == fleet::WorkerExit::TaskLimit)
        return 0;
    return int(rc);
}

int
cmdSubmit(const Options &opts)
{
    const std::uint16_t port = resolvePort(
        opts, int(opts.getInt("connect-timeout-ms", 10000)));
    fleet::Socket sock = fleet::connectTcp(
        opts.get("host", "127.0.0.1"), port,
        int(opts.getInt("connect-timeout-ms", 10000)));
    if (!sock.valid())
        sim::fatal("cannot reach manager on port %u",
                   unsigned(port));

    fleet::Json msg = fleet::Json::object();
    msg.set("type", fleet::Json("submit"));
    msg.set("spec", sweepSpecFromFlags(opts).toJson());
    if (!fleet::sendFrame(sock, msg))
        sim::fatal("manager rejected the job submission");

    fleet::Json reply;
    const int timeout =
        int(opts.getInt("job-timeout-ms", 600000));
    if (fleet::recvFrame(sock, reply, timeout) != 1
        || reply.getString("type", "") != "table")
        sim::fatal("no table from the manager");
    const std::string csv = reply.getString("csv", "");
    std::fputs(csv.c_str(), stdout);
    if (opts.has("csv")) {
        const std::string path = opts.get("csv", "sweep.csv");
        std::ofstream os(path);
        if (!os)
            sim::fatal("cannot write CSV to %s", path.c_str());
        os << csv;
    }
    return 0;
}

void
usage()
{
    std::puts(
        "usage: quest <subcommand> [--flag value ...]\n"
        "\n"
        "subcommands:\n"
        "  estimate   --workload NAME | --shor BITS  [--error-rate P]\n"
        "             [--tech T] [--protocol S]\n"
        "  microcode  [--capacity BITS] [--tech T]\n"
        "  trace-gen  [--out FILE] [--instructions N] [--qubits N]\n"
        "             [--seed S]\n"
        "  replay     --trace FILE [--mces N] [--rounds N]\n"
        "             [--distance D] [--error-rate P]\n"
        "             [--fault-rate P] [--fault-seed S]\n"
        "             [--faults-report] [--verify-on-load]\n"
        "  simulate   [--distance D] [--error-rate P] [--trials N]\n"
        "             [--protocol S] [--seed S]\n"
        "             [--stream-window N [--stream-stride M]]\n"
        "  verify     [--protocol S] [--design D] [--distance D]\n"
        "             [--tech T] [--channels N] [--bank-bits N]\n"
        "             [--trace FILE] [--epsilon E] [--json FILE]\n"
        "             [--timing [--tiles N] [--rounds R]]\n"
        "             (defaults sweep every protocol x design;\n"
        "             --timing cross-checks the static WCET bound\n"
        "             against the dynamic scheduler and gates\n"
        "             soundness and 1.5x tightness)\n"
        "  serve      [--port P] [--port-file FILE] [--csv FILE]\n"
        "             [--protocols A,B] [--distances 3,5]\n"
        "             [--error-rates 1e-3,...] [--trials N]\n"
        "             [--grain N] [--seed S] [--local]\n"
        "             [--lease-ms N] [--backoff-ms N] [--budget N]\n"
        "             [--straggler-factor F] [--fallback-ms N]\n"
        "             [--await-job [--submit-timeout-ms N]]\n"
        "  worker     --port P | --port-file FILE  [--name NAME]\n"
        "             [--max-tasks N] [--chaos-kill P]\n"
        "             [--chaos-stall P] [--chaos-drop P]\n"
        "             [--chaos-dup P] [--chaos-seed S]\n"
        "             [--stall-ms N]\n"
        "  submit     --port P | --port-file FILE  [sweep flags]\n"
        "             [--csv FILE] [--job-timeout-ms N]\n"
        "\n"
        "observability (any subcommand):\n"
        "  --trace-out FILE    write a Chrome-trace JSON of the run\n"
        "                      (open in Perfetto / chrome://tracing)\n"
        "  --metrics-out FILE  write the metrics registry as JSON\n"
        "  --metrics-wallclock also emit scheduling-dependent\n"
        "                      (Wallclock) metrics in --metrics-out");
}

/**
 * Write the --trace-out / --metrics-out artifacts after a
 * subcommand finished. The tracer was enabled before dispatch when
 * --trace-out was given; with a trace-disabled build the export is
 * an empty trace and a note on stderr.
 */
void
writeObservabilityOutputs(const Options &opts)
{
    if (opts.has("trace-out")) {
        const std::string path = opts.get("trace-out", "trace.json");
        std::ofstream os(path);
        if (!os) {
            std::fprintf(stderr, "cannot write trace to %s\n",
                         path.c_str());
        } else {
            if (!sim::traceCompiledIn())
                std::fprintf(stderr,
                             "note: built with QUEST_TRACE=OFF; %s "
                             "will be empty\n", path.c_str());
            sim::Tracer::instance().exportChromeTrace(os);
            std::fprintf(stderr, "wrote trace to %s\n", path.c_str());
        }
    }
    if (opts.has("metrics-out")) {
        const std::string path =
            opts.get("metrics-out", "metrics.json");
        std::ofstream os(path);
        if (!os) {
            std::fprintf(stderr, "cannot write metrics to %s\n",
                         path.c_str());
        } else {
            sim::metricsWriteJson(os, opts.has("metrics-wallclock"));
            std::fprintf(stderr, "wrote metrics to %s\n",
                         path.c_str());
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    const Options opts(argc, argv, 2);
    if (opts.has("trace-out"))
        sim::Tracer::instance().setEnabled(true);
    try {
        int rc = 2;
        if (cmd == "estimate")
            rc = cmdEstimate(opts);
        else if (cmd == "microcode")
            rc = cmdMicrocode(opts);
        else if (cmd == "trace-gen")
            rc = cmdTraceGen(opts);
        else if (cmd == "replay")
            rc = cmdReplay(opts);
        else if (cmd == "simulate")
            rc = cmdSimulate(opts);
        else if (cmd == "verify")
            rc = cmdVerify(opts);
        else if (cmd == "serve")
            rc = cmdServe(opts);
        else if (cmd == "worker")
            rc = cmdWorker(opts);
        else if (cmd == "submit")
            rc = cmdSubmit(opts);
        else {
            usage();
            return 2;
        }
        writeObservabilityOutputs(opts);
        return rc;
    } catch (const quest::sim::SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
