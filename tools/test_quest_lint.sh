#!/bin/sh
# Regression test for the det-unordered-iteration,
# det-simd-dispatch and det-metric-local-static determinism rules.
#
# PR 8 audited the two known std::unordered_* / same-tick ordering
# hot spots (LogicalInstructionCache::_index, point-access only, and
# the EventQueue FIFO tie-break): this script pins the audit. It
# checks that (1) the audited files stay clean, (2) a result-
# affecting module that iterates an unordered_map trips the rule,
# and (3) an explicit quest-lint allow() suppression still works.
#
# The corrupted fixture is staged in a throwaway repo skeleton
# (tools/quest_lint derives the repo root from its own location, and
# the rule only applies under result-affecting module paths such as
# src/core/), so the real tree is never touched.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"

if ! command -v python3 >/dev/null 2>&1; then
    echo "python3 unavailable; skipping quest_lint regression"
    exit 0
fi

# 1. The audited point-access users must stay clean.
python3 "$root/tools/quest_lint" \
    "$root/src/core/icache.hpp" "$root/src/core/icache.cpp" \
    "$root/src/sim/event_queue.hpp" "$root/src/sim/event_queue.cpp"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp/tools" "$tmp/src/core"
cp "$root/tools/quest_lint" "$tmp/tools/quest_lint"

# 2. Iterating an unordered_map in src/core must trip the rule.
cat > "$tmp/src/core/bad_iteration.cpp" <<'EOF'
#include <unordered_map>

int
sum()
{
    std::unordered_map<int, int> counts;
    int total = 0;
    for (const auto &kv : counts)
        total += kv.second;
    return total;
}
EOF
if python3 "$tmp/tools/quest_lint" "$tmp/src/core/bad_iteration.cpp" \
    > "$tmp/out.txt" 2>&1; then
    echo "FAIL: linter accepted unordered iteration in src/core" >&2
    cat "$tmp/out.txt" >&2
    exit 1
fi
grep -q "det-unordered-iteration" "$tmp/out.txt"

# 3. The same iteration under an explicit allow() is accepted.
cat > "$tmp/src/core/bad_iteration.cpp" <<'EOF'
#include <unordered_map>

int
sum()
{
    std::unordered_map<int, int> counts;
    int total = 0;
    // quest-lint: allow(det-unordered-iteration)
    for (const auto &kv : counts)
        total += kv.second;
    return total;
}
EOF
python3 "$tmp/tools/quest_lint" "$tmp/src/core/bad_iteration.cpp"

# 4. The SIMD facade itself is the only file allowed to touch raw
#    intrinsics / CPUID; it must stay clean under the linter.
python3 "$root/tools/quest_lint" \
    "$root/src/sim/simd.hpp" "$root/src/sim/simd.cpp" \
    "$root/src/sim/simd_kernels.inc"

# 5. Intrinsics or CPUID probes outside the facade must trip
#    det-simd-dispatch.
mkdir -p "$tmp/src/quantum"
cat > "$tmp/src/quantum/bad_simd.cpp" <<'EOF'
#include <immintrin.h>

bool
fast()
{
    return __builtin_cpu_supports("avx2") > 0;
}
EOF
if python3 "$tmp/tools/quest_lint" "$tmp/src/quantum/bad_simd.cpp" \
    > "$tmp/out.txt" 2>&1; then
    echo "FAIL: linter accepted raw intrinsics in src/quantum" >&2
    cat "$tmp/out.txt" >&2
    exit 1
fi
grep -q "det-simd-dispatch" "$tmp/out.txt"

# 6. The same code under an explicit allow() is accepted.
cat > "$tmp/src/quantum/bad_simd.cpp" <<'EOF'
// quest-lint: allow(det-simd-dispatch)
#include <immintrin.h>

bool
fast()
{
    // quest-lint: allow(det-simd-dispatch)
    return __builtin_cpu_supports("avx2") > 0;
}
EOF
python3 "$tmp/tools/quest_lint" "$tmp/src/quantum/bad_simd.cpp"

# 7. A function-local static bound to the metrics registry must
#    trip det-metric-local-static (the registry-lifetime hazard the
#    bound-at-construction members in DynamicScheduler/EventQueue
#    exist to avoid), including when the initializer wraps lines.
cat > "$tmp/src/core/bad_metric.cpp" <<'EOF'
#include "sim/metrics.hpp"

void
bump()
{
    static auto &calls =
        quest::sim::metrics::Registry::global().counter(
            "core.bump.calls", "calls into bump()");
    ++calls;
}
EOF
if python3 "$tmp/tools/quest_lint" "$tmp/src/core/bad_metric.cpp" \
    > "$tmp/out.txt" 2>&1; then
    echo "FAIL: linter accepted a static metrics-registry ref" >&2
    cat "$tmp/out.txt" >&2
    exit 1
fi
grep -q "det-metric-local-static" "$tmp/out.txt"

# 8. The same binding under an explicit allow() is accepted, and a
#    non-static registry use never fires the rule.
cat > "$tmp/src/core/bad_metric.cpp" <<'EOF'
#include "sim/metrics.hpp"

void
bump()
{
    // quest-lint: allow(det-metric-local-static)
    static auto &calls =
        quest::sim::metrics::Registry::global().counter(
            "core.bump.calls", "calls into bump()");
    ++calls;
}

void
bumpFresh()
{
    auto &calls = quest::sim::metrics::Registry::global().counter(
        "core.bump.fresh", "per-call registry lookup is fine");
    ++calls;
}
EOF
python3 "$tmp/tools/quest_lint" "$tmp/src/core/bad_metric.cpp"

echo "quest_lint det-unordered-iteration + det-simd-dispatch +" \
     "det-metric-local-static: OK"
