#!/usr/bin/env bash
#
# fleet_smoke.sh -- end-to-end determinism smoke for the sweep fleet.
#
# Runs the same sweep two ways and demands byte-identical CSVs:
#
#   1. `quest serve --local`: in-process, no sockets (the golden).
#   2. A real manager with one worker that deterministically dies on
#      its first task (seeded chaos injection) plus one clean worker
#      that finishes the job.
#
# The manager's wallclock metrics must witness the failure path (at
# least one re-dispatch after a worker disconnect) -- proving the
# bytes survived an actual worker loss, not just a clean run.
#
# Usage: tools/fleet_smoke.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD="${1:-build}"
QUEST="$BUILD/tools/quest"
if [ ! -x "$QUEST" ]; then
    echo "fleet_smoke: $QUEST not built" >&2
    exit 2
fi

WORK="$(mktemp -d)"
cleanup() {
    local pids
    pids="$(jobs -p)" || true
    # shellcheck disable=SC2086
    [ -n "$pids" ] && kill $pids 2> /dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

SWEEP=(--protocols Steane --distances 3 --error-rates 2e-3,5e-3
       --trials 96 --grain 16 --seed 77)

echo "fleet_smoke: golden run (quest serve --local)"
"$QUEST" serve --local "${SWEEP[@]}" --csv "$WORK/golden.csv" \
    > /dev/null

echo "fleet_smoke: fleet run (manager + chaotic + steady worker)"
"$QUEST" serve "${SWEEP[@]}" --port-file "$WORK/port" \
    --csv "$WORK/fleet.csv" \
    --metrics-out "$WORK/metrics.json" --metrics-wallclock \
    --lease-ms 700 --fallback-ms 8000 \
    > /dev/null 2> "$WORK/manager.log" &
MANAGER=$!

# Dies on its first task (exit code 2, KillInjected) -- the manager
# must detect the disconnect and re-lease the task elsewhere.
"$QUEST" worker --port-file "$WORK/port" --name chaotic \
    --chaos-kill 1.0 --chaos-seed 7 2> /dev/null || true &

# Give the chaotic worker time to claim a task before competition
# arrives; the steady worker then drains the rest of the sweep.
sleep 0.3
"$QUEST" worker --port-file "$WORK/port" --name steady \
    2> /dev/null || true &

if ! wait "$MANAGER"; then
    echo "fleet_smoke: FAIL -- manager exited non-zero" >&2
    cat "$WORK/manager.log" >&2
    exit 1
fi

if ! diff -u "$WORK/golden.csv" "$WORK/fleet.csv"; then
    echo "fleet_smoke: FAIL -- merged CSV diverges from the" \
         "single-box golden" >&2
    exit 1
fi

python3 - "$WORK/metrics.json" << 'EOF'
import json
import sys

m = json.load(open(sys.argv[1]))
total = m.get("fleet.tasks_total", 0)
done = m.get("fleet.tasks_completed", 0)
redispatches = m.get("fleet.redispatches", 0)
disconnects = m.get("fleet.worker_disconnects", 0)
print("fleet_smoke: tasks %d/%d, redispatches %d, disconnects %d"
      % (done, total, redispatches, disconnects))
if total == 0 or done != total:
    sys.exit("fleet_smoke: FAIL -- incomplete sweep")
if redispatches < 1:
    sys.exit("fleet_smoke: FAIL -- the chaos kill never exercised "
             "the re-dispatch path")
EOF

echo "fleet_smoke: PASS -- byte-identical after worker loss"
